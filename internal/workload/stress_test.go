package workload

import "testing"

// TestStress is the -race target for the DB-level lock manager: workers
// hammer independent tables with bulk deletes, lookups, and inserts, and
// the shadow model must match the engine exactly at the end. The CI seed
// matrix re-runs this via cmd/stress.
func TestStress(t *testing.T) {
	cases := []struct {
		name string
		spec StressSpec
	}{
		{"serial-protocol", StressSpec{Seed: 1}},
		{"concurrent-protocol", StressSpec{Seed: 2, Concurrent: true}},
		{"device-array", StressSpec{Seed: 3, Devices: 4, Parallel: 3, Budget: 4, Concurrent: true}},
		{"no-wal", StressSpec{Seed: 4, DisableWAL: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			stats, err := Stress(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if stats.BulkDeletes == 0 || stats.RowsInserted == 0 {
				t.Fatalf("degenerate run: %+v", stats)
			}
			t.Logf("deletes=%d deleted=%d inserted=%d lookups=%d lockWaits=%d makespan=%v serial=%v",
				stats.BulkDeletes, stats.RowsDeleted, stats.RowsInserted, stats.Lookups,
				stats.LockWaits, stats.Makespan, stats.SerialEquivalent)
		})
	}
}

// TestStressReplay asserts generator determinism: the same seed issues the
// same operation mix (same totals in a single-worker run, where no
// interleaving can perturb outcomes).
func TestStressReplay(t *testing.T) {
	spec := StressSpec{Seed: 7, Workers: 1, Ops: 60}
	a, err := Stress(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stress(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.BulkDeletes != b.BulkDeletes || a.RowsDeleted != b.RowsDeleted ||
		a.RowsInserted != b.RowsInserted || a.Lookups != b.Lookups {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}
