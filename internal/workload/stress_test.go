package workload

import (
	"context"
	"testing"
	"time"
)

// TestStress is the -race target for the DB-level lock manager: workers
// hammer independent tables with bulk deletes, lookups, and inserts, and
// the shadow model must match the engine exactly at the end. The CI seed
// matrix re-runs this via cmd/stress.
func TestStress(t *testing.T) {
	cases := []struct {
		name string
		spec StressSpec
	}{
		{"serial-protocol", StressSpec{Seed: 1}},
		{"concurrent-protocol", StressSpec{Seed: 2, Concurrent: true}},
		{"device-array", StressSpec{Seed: 3, Devices: 4, Parallel: 3, Budget: 4, Concurrent: true}},
		{"no-wal", StressSpec{Seed: 4, DisableWAL: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			stats, err := Stress(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if stats.BulkDeletes == 0 || stats.RowsInserted == 0 {
				t.Fatalf("degenerate run: %+v", stats)
			}
			t.Logf("deletes=%d deleted=%d inserted=%d lookups=%d lockWaits=%d makespan=%v serial=%v",
				stats.BulkDeletes, stats.RowsDeleted, stats.RowsInserted, stats.Lookups,
				stats.LockWaits, stats.Makespan, stats.SerialEquivalent)
		})
	}
}

// TestStressChaos turns on every disruption knob at once: random
// cancellations, tiny statement deadlines, tiny lock-wait budgets, and a
// capped admission queue. The run must still end with an exact model match
// and no leaked statements, locks, or admission slots — cancelled deletes
// abort to consistency (zero or full effect, never torn) and refused ones
// are retried.
func TestStressChaos(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec StressSpec
	}{
		{"serial", StressSpec{Seed: 11, CancelPct: 25, DeadlinePct: 25, LockWaitPct: 30}},
		{"concurrent-array", StressSpec{Seed: 12, Devices: 4, Parallel: 3, Budget: 2,
			AdmissionQueue: 1, Concurrent: true, CancelPct: 20, DeadlinePct: 20, LockWaitPct: 25}},
		{"no-wal", StressSpec{Seed: 13, DisableWAL: true, CancelPct: 25, DeadlinePct: 25}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			stats, err := Stress(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if stats.BulkDeletes == 0 {
				t.Fatalf("degenerate run: %+v", stats)
			}
			t.Logf("deletes=%d cancelled=%d full-aborts=%d zero-aborts=%d lock-timeouts=%d shed=%d retries=%d",
				stats.BulkDeletes, stats.Cancelled, stats.FullAborts, stats.ZeroAborts,
				stats.LockTimeouts, stats.Shed, stats.Retries)
			if tc.spec.CancelPct > 0 && stats.Cancelled == 0 {
				t.Error("chaos never cancelled a statement")
			}
		})
	}
}

// TestStressSQL routes a fraction of the workload through the SQL wire
// front door: the same shadow model validates the lowered statements, so
// a SQL INSERT/SELECT/DELETE that binds to the wrong field, drops a
// victim, or miscounts its result set fails the run exactly like a broken
// Go-API call would.
func TestStressSQL(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec StressSpec
	}{
		{"serial", StressSpec{Seed: 21, SQLPct: 40, Workers: 6, Ops: 60}},
		{"concurrent-array", StressSpec{Seed: 22, SQLPct: 30, Devices: 4, Parallel: 3,
			Budget: 4, Concurrent: true, Workers: 6, Ops: 60}},
		{"sql-with-chaos-elsewhere", StressSpec{Seed: 23, SQLPct: 35, CancelPct: 20,
			DeadlinePct: 20, Workers: 6, Ops: 60}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			stats, err := Stress(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if stats.SQLStmts == 0 {
				t.Fatalf("no statements went through the SQL front door: %+v", stats)
			}
			t.Logf("sql-stmts=%d deletes=%d inserted=%d lookups=%d",
				stats.SQLStmts, stats.BulkDeletes, stats.RowsInserted, stats.Lookups)
		})
	}
}

// TestStressInterrupt cancels the run context mid-flight: the workers must
// drain instead of erroring out, the final verification must still run, and
// the stats must report the interruption.
func TestStressInterrupt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	stats, err := Stress(StressSpec{Seed: 14, Workers: 4, Ops: 10_000, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Interrupted {
		t.Fatal("run was cancelled mid-flight but Interrupted is false")
	}
}

// TestStressReplay asserts generator determinism: the same seed issues the
// same operation mix (same totals in a single-worker run, where no
// interleaving can perturb outcomes).
func TestStressReplay(t *testing.T) {
	spec := StressSpec{Seed: 7, Workers: 1, Ops: 60}
	a, err := Stress(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stress(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.BulkDeletes != b.BulkDeletes || a.RowsDeleted != b.RowsDeleted ||
		a.RowsInserted != b.RowsInserted || a.Lookups != b.Lookups {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}
