package workload

import (
	"testing"
	"time"

	"bulkdel/internal/buffer"
	"bulkdel/internal/record"
	"bulkdel/internal/sim"
	"bulkdel/internal/table"
)

func testPool() *buffer.Pool {
	d := sim.NewDisk(sim.CostModel{
		Seek:         8 * time.Millisecond,
		Rotation:     4 * time.Millisecond,
		TransferPage: 1 * time.Millisecond,
	})
	return buffer.New(d, 2048*sim.PageSize)
}

func TestDefaultSpec(t *testing.T) {
	s := DefaultSpec(1000)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Fields != 10 || s.TupleSize != 512 || len(s.Indexes) != 1 {
		t.Fatalf("spec = %+v", s)
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{Rows: 0, Fields: 1, TupleSize: 8, ClusterField: -1},
		{Rows: 1, Fields: 0, TupleSize: 8, ClusterField: -1},
		{Rows: 1, Fields: 2, TupleSize: 8, ClusterField: -1},
		{Rows: 1, Fields: 1, TupleSize: 8, ClusterField: 5},
		{Rows: 1, Fields: 1, TupleSize: 8, ClusterField: -1,
			Indexes: []table.IndexDef{{Name: "IX", Field: 3}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %d should be invalid", i)
		}
	}
}

func TestBuildShape(t *testing.T) {
	s := DefaultSpec(3000)
	s.Indexes = append(s.Indexes, table.IndexDef{Name: "IB", Field: 1})
	tbl, rows, err := Build(testPool(), s)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Heap.Count() != 3000 || len(rows) != 3000 {
		t.Fatalf("rows = %d/%d", tbl.Heap.Count(), len(rows))
	}
	if len(tbl.Idx) != 2 {
		t.Fatalf("indexes = %d", len(tbl.Idx))
	}
	// Attributes are duplicate-free permutations of [0, n).
	for f := 0; f < 2; f++ {
		seen := make([]bool, 3000)
		for _, r := range rows {
			v := r[f]
			if v < 0 || v >= 3000 || seen[v] {
				t.Fatalf("field %d not a permutation (value %d)", f, v)
			}
			seen[v] = true
		}
	}
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	s := DefaultSpec(500)
	_, rows1, err := Build(testPool(), s)
	if err != nil {
		t.Fatal(err)
	}
	_, rows2, err := Build(testPool(), s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows1 {
		for f := range rows1[i] {
			if rows1[i][f] != rows2[i][f] {
				t.Fatalf("row %d field %d differs across builds", i, f)
			}
		}
	}
	s.Seed = 2
	_, rows3, err := Build(testPool(), s)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range rows1 {
		if rows1[i][0] != rows3[i][0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClusteredBuild(t *testing.T) {
	s := DefaultSpec(2000)
	s.ClusterField = 0
	tbl, rows, err := Build(testPool(), s)
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
	if !tbl.Idx[0].Def.Clustered {
		t.Fatal("index over the cluster field not flagged clustered")
	}
	// The heap is physically sorted by attribute 0.
	v := int64(-1)
	err = tbl.Heap.Scan(func(_ record.RID, rec []byte) error {
		x := tbl.Schema.Field(rec, 0)
		if x <= v {
			t.Fatalf("heap not clustered: %d after %d", x, v)
		}
		v = x
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestVictimSample(t *testing.T) {
	s := DefaultSpec(1000)
	_, rows, err := Build(testPool(), s)
	if err != nil {
		t.Fatal(err)
	}
	v := VictimSample(rows, 0, 0.15, 7)
	if len(v) != 150 {
		t.Fatalf("sample size %d, want 150", len(v))
	}
	seen := map[int64]bool{}
	for _, x := range v {
		if seen[x] {
			t.Fatalf("duplicate victim %d", x)
		}
		seen[x] = true
		if x < 0 || x >= 1000 {
			t.Fatalf("victim %d out of domain", x)
		}
	}
	// Deterministic.
	v2 := VictimSample(rows, 0, 0.15, 7)
	for i := range v {
		if v[i] != v2[i] {
			t.Fatal("victim sample not deterministic")
		}
	}
	// Over-fraction clamps.
	if got := VictimSample(rows, 0, 2.0, 7); len(got) != 1000 {
		t.Fatalf("clamped sample = %d", len(got))
	}
}
