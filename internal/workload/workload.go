// Package workload generates the paper's synthetic benchmark database.
//
// The evaluation database (paper §4.1) is one table R with eleven
// attributes A, B, ..., K: initially 1,000,000 tuples of 512 bytes, the
// first ten attributes random integers, the last a garbage string for
// padding. Every attribute is duplicate-free ("because Jannink's B⁺-tree
// implementation does not support duplicates") — generated here as
// independent pseudo-random permutations. The victim table D holds the
// A-values of the records to delete: a random sample sized to the delete
// fraction (1%–20% across the experiments).
//
// All generation is deterministic in the seed, so every experiment is
// exactly reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"bulkdel/internal/buffer"
	"bulkdel/internal/record"
	"bulkdel/internal/table"
)

// Spec describes a benchmark database.
type Spec struct {
	// Rows is the table size (paper: 1,000,000).
	Rows int
	// Fields is the number of integer attributes (paper: 10).
	Fields int
	// TupleSize pads each record to this many bytes (paper: 512).
	TupleSize int
	// Indexes to create, in order. Index 0 is conventionally I_A over
	// attribute 0, the access path of the benchmark DELETE statement.
	Indexes []table.IndexDef
	// ClusterField, when >= 0, loads the table sorted by that attribute
	// so an index over it is clustered (Experiment 5).
	ClusterField int
	// Seed drives all pseudo-randomness.
	Seed int64
}

// DefaultSpec returns the paper's standard configuration with one
// unclustered index on attribute A.
func DefaultSpec(rows int) Spec {
	return Spec{
		Rows:         rows,
		Fields:       10,
		TupleSize:    512,
		ClusterField: -1,
		Seed:         1,
		Indexes: []table.IndexDef{
			{Name: "IA", Field: 0},
		},
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Rows < 1 {
		return fmt.Errorf("workload: need at least one row")
	}
	if s.Fields < 1 {
		return fmt.Errorf("workload: need at least one field")
	}
	if s.TupleSize < s.Fields*8 {
		return fmt.Errorf("workload: tuple size %d cannot hold %d fields", s.TupleSize, s.Fields)
	}
	if s.ClusterField >= s.Fields {
		return fmt.Errorf("workload: cluster field %d out of range", s.ClusterField)
	}
	for _, def := range s.Indexes {
		if def.Field < 0 || def.Field >= s.Fields {
			return fmt.Errorf("workload: index %s field %d out of range", def.Name, def.Field)
		}
	}
	return nil
}

// permutation returns a duplicate-free pseudo-random sequence of n values.
func permutation(rng *rand.Rand, n int) []int64 {
	p := rng.Perm(n)
	out := make([]int64, n)
	for i, v := range p {
		out[i] = int64(v)
	}
	return out
}

// Generate produces the spec's attribute matrix (row-major) without
// loading a table, so the same logical dataset can be poured into any
// storage backend. Deterministic in the seed.
func Generate(s Spec) ([][]int64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cols := make([][]int64, s.Fields)
	for f := range cols {
		cols[f] = permutation(rng, s.Rows)
	}
	rows := make([][]int64, s.Rows)
	for i := range rows {
		vals := make([]int64, s.Fields)
		for f := 0; f < s.Fields; f++ {
			vals[f] = cols[f][i]
		}
		rows[i] = vals
	}
	return rows, nil
}

// Build creates and loads the benchmark table. The returned rows matrix
// holds the generated attribute values (row-major), which experiments use
// to draw victim samples.
func Build(pool *buffer.Pool, s Spec) (*table.Table, [][]int64, error) {
	rows, err := Generate(s)
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, s.Rows)
	for i := range order {
		order[i] = i
	}
	if s.ClusterField >= 0 {
		cf := s.ClusterField
		sort.Slice(order, func(a, b int) bool { return rows[order[a]][cf] < rows[order[b]][cf] })
	}

	schema := record.Schema{NumFields: s.Fields, Size: s.TupleSize}
	tbl, err := table.Create(pool, "R", schema)
	if err != nil {
		return nil, nil, err
	}
	rec := make([]byte, s.TupleSize)
	for _, i := range order {
		if err := schema.EncodeInto(rec, rows[i]); err != nil {
			return nil, nil, err
		}
		if _, err := tbl.Heap.Insert(rec); err != nil {
			return nil, nil, err
		}
	}
	for _, def := range s.Indexes {
		if s.ClusterField >= 0 && def.Field == s.ClusterField {
			def.Clustered = true
		}
		if _, err := tbl.CreateIndex(def); err != nil {
			return nil, nil, err
		}
	}
	return tbl, rows, nil
}

// VictimSample draws a duplicate-free sample of attribute-`field` values
// covering `fraction` of the rows — the paper's table D. Deterministic in
// the seed.
func VictimSample(rows [][]int64, field int, fraction float64, seed int64) []int64 {
	n := len(rows)
	k := int(float64(n)*fraction + 0.5)
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = rows[perm[i]][field]
	}
	return out
}
