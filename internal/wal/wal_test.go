package wal

import (
	"bytes"
	"testing"
	"time"

	"bulkdel/internal/sim"
)

func testDisk() *sim.Disk {
	return sim.NewDisk(sim.CostModel{
		Seek:         8 * time.Millisecond,
		Rotation:     4 * time.Millisecond,
		TransferPage: 1 * time.Millisecond,
	})
}

func TestAppendFlushReopen(t *testing.T) {
	d := testDisk()
	l := Create(d)
	lsn1, err := l.Append(TBegin, 1, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append(TBulkStart, 1, 10, 11, []byte("victims"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn2 <= lsn1 {
		t.Fatal("LSNs must increase")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	if recs[0].Type != TBegin || recs[0].TxID != 1 || recs[0].LSN != lsn1 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Type != TBulkStart || recs[1].A != 10 || recs[1].B != 11 ||
		!bytes.Equal(recs[1].Payload, []byte("victims")) {
		t.Fatalf("rec1 = %+v", recs[1])
	}
}

func TestUnflushedRecordsAreLost(t *testing.T) {
	d := testDisk()
	l := Create(d)
	if _, err := l.Append(TBegin, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TCommit, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	// No flush: a crash loses the commit.
	_, recs, err := Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != TBegin {
		t.Fatalf("recovered %d records, want only the flushed begin", len(recs))
	}
}

func TestAppendAfterReopen(t *testing.T) {
	d := testDisk()
	l := Create(d)
	if _, err := l.Append(TBegin, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatal("expected 1 record")
	}
	if _, err := l2.Append(TCommit, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Type != TCommit {
		t.Fatalf("after reopen-append: %d records", len(recs))
	}
}

func TestManyRecordsSpanPages(t *testing.T) {
	d := testDisk()
	l := Create(d)
	payload := bytes.Repeat([]byte{0xAB}, 100)
	n := 500 // ~63 KB total, ~16 pages
	for i := 0; i < n; i++ {
		if _, err := l.Append(TNote, uint64(i), uint64(i*2), uint64(i*3), payload); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 {
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.TxID != uint64(i) || r.A != uint64(i*2) || r.B != uint64(i*3) ||
			!bytes.Equal(r.Payload, payload) {
			t.Fatalf("record %d corrupted: %+v", i, r)
		}
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	d := testDisk()
	l := Create(d)
	if _, err := l.Append(TNote, 0, 0, 0, make([]byte, 70000)); err == nil {
		t.Fatal("oversized payload should fail")
	}
}

func TestAnalyzeBulkNoBulk(t *testing.T) {
	recs := []Record{{Type: TBegin, TxID: 1}, {Type: TCommit, TxID: 1}}
	if _, ok := AnalyzeBulk(recs); ok {
		t.Fatal("no bulk delete in log")
	}
}

func TestAnalyzeBulkInterrupted(t *testing.T) {
	recs := []Record{
		{Type: TBegin, TxID: 7},
		{Type: TBulkStart, TxID: 7, A: 100, B: 200},
		{Type: TStructStart, TxID: 7, A: 101, B: 1},
		{Type: TCheckpoint, TxID: 7, A: 101, B: 5000},
		{Type: TStructDone, TxID: 7, A: 101},
		{Type: TStructStart, TxID: 7, A: 100, B: 0},
		{Type: TCheckpoint, TxID: 7, A: 100, B: 1000},
		{Type: TCheckpoint, TxID: 7, A: 100, B: 3000},
		// crash here
	}
	st, ok := AnalyzeBulk(recs)
	if !ok {
		t.Fatal("bulk delete not found")
	}
	if st.TxID != 7 || st.Table != 100 || st.VictimFile != 200 {
		t.Fatalf("state = %+v", st)
	}
	if !st.Done[101] || st.Done[100] {
		t.Fatalf("done set wrong: %+v", st.Done)
	}
	if !st.HasInProgress || st.InProgress != 100 || st.Progress != 3000 || st.Kind != 0 {
		t.Fatalf("in-progress wrong: %+v", st)
	}
	if st.Finished {
		t.Fatal("must not be finished")
	}
}

func TestAnalyzeBulkFinished(t *testing.T) {
	recs := []Record{
		{Type: TBulkStart, TxID: 7, A: 100, B: 200},
		{Type: TStructStart, TxID: 7, A: 100},
		{Type: TStructDone, TxID: 7, A: 100},
		{Type: TBulkEnd, TxID: 7},
	}
	st, ok := AnalyzeBulk(recs)
	if !ok || !st.Finished {
		t.Fatalf("finished bulk delete not recognized: %+v", st)
	}
	if st.HasInProgress {
		t.Fatal("no structure should be in progress")
	}
}

func TestAnalyzeBulkTakesLatest(t *testing.T) {
	recs := []Record{
		{Type: TBulkStart, TxID: 1, A: 10, B: 20},
		{Type: TBulkEnd, TxID: 1},
		{Type: TBulkStart, TxID: 2, A: 30, B: 40},
		{Type: TStructStart, TxID: 2, A: 31, B: 1},
	}
	st, ok := AnalyzeBulk(recs)
	if !ok || st.TxID != 2 || st.Table != 30 || st.Finished {
		t.Fatalf("latest bulk not selected: %+v", st)
	}
}

func TestTypeString(t *testing.T) {
	for ty := TBegin; ty <= TNote; ty++ {
		if ty.String() == "" {
			t.Fatalf("type %d has empty string", ty)
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Fatal("unknown type string")
	}
}

func TestAnalyzeBulksInterleaved(t *testing.T) {
	// Two concurrent statements interleave their records in the shared
	// log; AnalyzeBulks must route each record to its own transaction's
	// state and report the statements in TBulkStart order.
	recs := []Record{
		{Type: TBulkStart, TxID: 1, A: 100, B: 200},
		{Type: TBulkStart, TxID: 2, A: 300, B: 400},
		{Type: TStructStart, TxID: 2, A: 301, B: 1},
		{Type: TStructStart, TxID: 1, A: 101, B: 1},
		{Type: TCheckpoint, TxID: 1, A: 101, B: 500},
		{Type: TStructDone, TxID: 2, A: 301},
		{Type: TStructStart, TxID: 2, A: 300, B: 0},
		{Type: TCheckpoint, TxID: 2, A: 300, B: 900},
		{Type: TStructDone, TxID: 1, A: 101},
		{Type: TBulkEnd, TxID: 1},
		// crash: tx 2 unfinished, tx 1 committed
	}
	sts := AnalyzeBulks(recs)
	if len(sts) != 2 {
		t.Fatalf("want 2 states, got %d", len(sts))
	}
	if sts[0].TxID != 1 || sts[1].TxID != 2 {
		t.Fatalf("order wrong: tx %d then tx %d", sts[0].TxID, sts[1].TxID)
	}
	if !sts[0].Finished || !sts[0].Done[101] {
		t.Fatalf("tx 1 state wrong: %+v", sts[0])
	}
	two := sts[1]
	if two.Finished || two.Table != 300 || two.VictimFile != 400 {
		t.Fatalf("tx 2 state wrong: %+v", two)
	}
	if !two.Done[301] || !two.HasInProgress || two.InProgress != 300 || two.Progress != 900 {
		t.Fatalf("tx 2 progress wrong: %+v", two)
	}
	// The single-statement wrapper keeps its pick-the-latest contract.
	st, ok := AnalyzeBulk(recs)
	if !ok || st.TxID != 2 {
		t.Fatalf("AnalyzeBulk should return the last statement: %+v", st)
	}
}

func TestAnalyzeBulksRestartedTx(t *testing.T) {
	// A TBulkStart that reuses a TxID replaces the earlier state without
	// duplicating the statement in the ordering.
	recs := []Record{
		{Type: TBulkStart, TxID: 5, A: 10, B: 20},
		{Type: TStructStart, TxID: 5, A: 11, B: 1},
		{Type: TBulkStart, TxID: 5, A: 30, B: 40},
	}
	sts := AnalyzeBulks(recs)
	if len(sts) != 1 {
		t.Fatalf("want 1 state, got %d", len(sts))
	}
	if sts[0].Table != 30 || sts[0].VictimFile != 40 || len(sts[0].Done) != 0 {
		t.Fatalf("restart did not replace state: %+v", sts[0])
	}
}
