// Package wal implements the write-ahead log that makes bulk deletes
// restartable.
//
// The paper's recovery scheme (§3.2) is unusual and is reproduced here
// faithfully: a bulk delete that was interrupted by a crash is *finished
// during recovery* — rolled forward — "instead of rolling it back as done
// during traditional recovery". To support that, the bulk deleter
//
//   - materializes its victim list to stable storage before touching any
//     structure ("the results of the join variants ... should be
//     materialized to stable storage"),
//   - writes a checkpoint record whenever it finishes a structure (table
//     or index) and periodically within one ("a checkpoint could be
//     established at any time ... additionally the last processed RID or
//     key-value can be stored in the log"), and
//   - relies on the clustered order of the victim list: because both the
//     victim list and the structures are processed in physical order, "the
//     already processed values can easily be recognized" and re-applying a
//     prefix is idempotent.
//
// The log itself is a byte stream packed into pages of a dedicated file on
// the simulated disk; appends are buffered and Flush forces full pages out
// sequentially. Recovery reads back only what was flushed — exactly what a
// crash would leave behind.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"bulkdel/internal/sim"
)

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// Type identifies a log record kind.
type Type uint8

// Log record types. The A/B fields of Record carry type-specific values.
const (
	// TBegin marks the start of a transaction.
	TBegin Type = iota + 1
	// TCommit marks a committed transaction.
	TCommit
	// TAbort marks an aborted transaction.
	TAbort
	// TBulkStart marks the start of a bulk delete: A = table file,
	// B = victim-list file (already materialized and sorted).
	TBulkStart
	// TStructStart marks the start of processing one structure:
	// A = structure file, B = kind (0 heap, 1 index).
	TStructStart
	// TCheckpoint records progress inside a structure: A = structure
	// file, B = number of victim rows already applied to it. All dirty
	// pages with smaller LSNs are flushed before the record is written.
	TCheckpoint
	// TStructDone marks a structure as fully processed: A = structure file.
	TStructDone
	// TBulkEnd marks the bulk delete as complete.
	TBulkEnd
	// TMaterialized records that an intermediate victim list (a join
	// result in the paper's terms) has been written to stable storage:
	// A = the structure it feeds (0 for the global RID list), B = the
	// row file holding it. Recovery reads these lists instead of
	// re-deriving them from (already modified) structures.
	TMaterialized
	// TNote is a free-form marker used by tests and tools.
	TNote
	// TMoveStart marks the start of a file migration by the rebalancer:
	// A = file being moved, B = destination device. The source copy stays
	// intact (and the catalog keeps naming it) until TMoveDone is logged,
	// so a crash between the two recovers by redoing the move.
	TMoveStart
	// TMoveDone marks the migration of A as complete on device B.
	TMoveDone
	// TLSMPut logs a put into an LSM table's memtable: A = key, B = seq,
	// payload = [1B name length][table name][record bytes]. Replayed into
	// the memtable when seq is newer than the manifest's flushed horizon.
	TLSMPut
	// TLSMDel logs a point delete on an LSM table: A = key, B = seq,
	// payload = [1B name length][table name].
	TLSMDel
	// TLSMRangeDel logs a range delete on an LSM table: A = lo key,
	// B = hi key, payload = [1B name length][table name][8B seq].
	TLSMRangeDel
)

func (t Type) String() string {
	switch t {
	case TBegin:
		return "begin"
	case TCommit:
		return "commit"
	case TAbort:
		return "abort"
	case TBulkStart:
		return "bulk-start"
	case TStructStart:
		return "struct-start"
	case TCheckpoint:
		return "checkpoint"
	case TStructDone:
		return "struct-done"
	case TBulkEnd:
		return "bulk-end"
	case TMaterialized:
		return "materialized"
	case TNote:
		return "note"
	case TMoveStart:
		return "move-start"
	case TMoveDone:
		return "move-done"
	case TLSMPut:
		return "lsm-put"
	case TLSMDel:
		return "lsm-del"
	case TLSMRangeDel:
		return "lsm-range-del"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one log entry.
type Record struct {
	LSN     LSN
	Type    Type
	Gen     uint32 // log generation that wrote the record
	TxID    uint64
	A, B    uint64
	Payload []byte
}

// record wire format:
//
//	[1B type][4B gen][8B txID][8B A][8B B][2B payload len][4B crc][payload]
//
// gen is the log generation: it starts at 1 and is bumped every time the
// log is reopened after a crash, so a torn tail overwritten by a new
// generation can never resurrect records of an old one — generations are
// nondecreasing along the stream and the recovery scan stops when they go
// backwards. crc is CRC-32C over the header (crc field zeroed) and the
// payload; it rejects torn records whether the tear landed inside the
// header, inside the payload, or left a misaligned remnant of an earlier
// flush image of the same page.
const recHeaderSize = 1 + 4 + 8 + 8 + 8 + 2 + 4

const crcOff = recHeaderSize - 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recCRC computes the checksum of an encoded record: the header with its
// crc field zeroed, followed by the payload.
func recCRC(hdr []byte, payload []byte) uint32 {
	c := crc32.Update(0, crcTable, hdr[:crcOff])
	c = crc32.Update(c, crcTable, []byte{0, 0, 0, 0})
	return crc32.Update(c, crcTable, payload)
}

// Log is an append-only write-ahead log. It is safe for concurrent use: a
// single mutex orders appends, so records from concurrent bulk-delete
// passes are funneled through one serialized appender and the stream stays
// a valid totally-ordered log (the relative order of records from
// *different* structures is scheduling-dependent, but each structure's own
// start → checkpoint → done sequence is program-ordered by its goroutine,
// which is all the §3.2 roll-forward protocol needs).
type Log struct {
	mu      sync.Mutex
	disk    *sim.Disk
	file    sim.FileID
	gen     uint32 // generation stamped on appended records
	buf     []byte // unflushed bytes (tail of the stream)
	off     uint64 // stream offset of buf[0]
	flushed uint64 // bytes durably on disk
	pages   sim.PageNo

	// Appender-queue counters, maintained under mu (see QueueStats).
	appends      uint64
	appendBytes  uint64
	flushes      uint64
	flushPages   uint64
	flushBytes   uint64
	queuePeak    int
	appendWaitNS int64 // real time blocked on the appender mutex

	// OnAppend/OnFlush, when set, observe the appender queue: OnAppend
	// fires after every accepted record with the record size, the queued
	// (unflushed) bytes after the append, and the *real* time the caller
	// spent blocked on the appender mutex; OnFlush fires after every flush
	// that wrote pages. Set them once right after Create/Open, before
	// statements run; they are read without synchronization afterwards and
	// invoked outside the appender mutex.
	OnAppend func(bytes, queued int, waited time.Duration)
	OnFlush  func(bytes, pages int)
}

// QueueStats is a snapshot of the appender-queue counters: cumulative
// appends/flushes, bytes and pages moved, the current and peak unflushed
// queue depth in bytes, and total real time spent blocked on the appender
// mutex. The wait figure is wall-clock (the appender serializes concurrent
// statements), so it is the one nondeterministic field.
type QueueStats struct {
	Appends      uint64
	AppendBytes  uint64
	Flushes      uint64
	FlushPages   uint64
	FlushBytes   uint64
	Queued       int
	QueuePeak    int
	AppendWaitNS int64
}

// QueueStats returns the appender-queue counters.
func (l *Log) QueueStats() QueueStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return QueueStats{
		Appends:      l.appends,
		AppendBytes:  l.appendBytes,
		Flushes:      l.flushes,
		FlushPages:   l.flushPages,
		FlushBytes:   l.flushBytes,
		Queued:       len(l.buf),
		QueuePeak:    l.queuePeak,
		AppendWaitNS: l.appendWaitNS,
	}
}

// Create makes a fresh, empty log on its own file.
func Create(disk *sim.Disk) *Log {
	return &Log{disk: disk, file: disk.CreateFile(), gen: 1}
}

// FileID returns the log's file.
func (l *Log) FileID() sim.FileID { return l.file }

// Generation returns the generation stamped on records this Log appends.
func (l *Log) Generation() uint32 { return l.gen }

// Append adds a record and returns its LSN. The record is durable only
// after the next Flush.
func (l *Log) Append(t Type, txID, a, b uint64, payload []byte) (LSN, error) {
	if len(payload) > 0xFFFF {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds limit", len(payload))
	}
	t0 := time.Now()
	l.mu.Lock()
	waited := time.Since(t0)
	lsn := LSN(l.off + uint64(len(l.buf)))
	var hdr [recHeaderSize]byte
	hdr[0] = byte(t)
	binary.LittleEndian.PutUint32(hdr[1:], l.gen)
	binary.LittleEndian.PutUint64(hdr[5:], txID)
	binary.LittleEndian.PutUint64(hdr[13:], a)
	binary.LittleEndian.PutUint64(hdr[21:], b)
	binary.LittleEndian.PutUint16(hdr[29:], uint16(len(payload)))
	binary.LittleEndian.PutUint32(hdr[crcOff:], recCRC(hdr[:], payload))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	rec := recHeaderSize + len(payload)
	queued := len(l.buf)
	l.appends++
	l.appendBytes += uint64(rec)
	l.appendWaitNS += waited.Nanoseconds()
	if queued > l.queuePeak {
		l.queuePeak = queued
	}
	hook := l.OnAppend
	l.mu.Unlock()
	if hook != nil {
		hook(rec, queued, waited)
	}
	return lsn, nil
}

// Flush forces every appended record to disk.
func (l *Log) Flush() error {
	l.mu.Lock()
	flushed, pages, err := l.flushLocked()
	hook := l.OnFlush
	l.mu.Unlock()
	if err == nil && pages > 0 && hook != nil {
		hook(flushed, pages)
	}
	return err
}

// flushLocked does the write with mu held, returning the record bytes made
// durable and the pages written.
func (l *Log) flushLocked() (flushedBytes, pagesWritten int, err error) {
	if len(l.buf) == 0 {
		return 0, 0, nil
	}
	// Write out whole pages covering the buffered stream tail. The first
	// buffered byte may sit mid-page: that page is rewritten.
	startPage := sim.PageNo(l.off / sim.PageSize)
	endOff := l.off + uint64(len(l.buf))
	endPage := sim.PageNo((endOff + sim.PageSize - 1) / sim.PageSize)
	for l.pages < endPage {
		if _, err := l.disk.Allocate(l.file); err != nil {
			return 0, 0, err
		}
		l.pages++
	}
	// Assemble page images. The partial first page keeps its stream
	// prefix — but we only ever rewrite the page that contains l.off,
	// whose prefix bytes were already flushed; read them back.
	var pages [][]byte
	inPageOff := int(l.off % sim.PageSize)
	first := make([]byte, sim.PageSize)
	if inPageOff > 0 {
		if err := l.disk.ReadPage(l.file, startPage, first); err != nil {
			return 0, 0, err
		}
		// Zero everything past the flushed prefix so the rewritten page
		// never carries stale bytes of an earlier flush image beyond the
		// new content — those could otherwise parse as records after the
		// next crash.
		for i := inPageOff; i < sim.PageSize; i++ {
			first[i] = 0
		}
	}
	src := l.buf
	copy(first[inPageOff:], src)
	consumed := sim.PageSize - inPageOff
	if consumed > len(src) {
		consumed = len(src)
	}
	src = src[consumed:]
	pages = append(pages, first)
	for len(src) > 0 {
		pg := make([]byte, sim.PageSize)
		n := copy(pg, src)
		src = src[n:]
		pages = append(pages, pg)
	}
	if err := l.disk.WriteRun(l.file, startPage, pages); err != nil {
		return 0, 0, err
	}
	flushedBytes = len(l.buf)
	pagesWritten = len(pages)
	l.off = endOff
	l.buf = l.buf[:0]
	l.flushed = endOff
	l.flushes++
	l.flushPages += uint64(pagesWritten)
	l.flushBytes += uint64(flushedBytes)
	return flushedBytes, pagesWritten, nil
}

// FlushedLSN returns the first LSN not yet guaranteed durable.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LSN(l.flushed)
}

// readStream reads every page of a log file into one byte stream.
func readStream(disk *sim.Disk, file sim.FileID, n sim.PageNo) ([]byte, error) {
	stream := make([]byte, 0, int(n)*sim.PageSize)
	buf := make([]byte, sim.PageSize)
	for p := sim.PageNo(0); p < n; p++ {
		if err := disk.ReadPage(file, p, buf); err != nil {
			return nil, err
		}
		stream = append(stream, buf...)
	}
	return stream, nil
}

// parseStream walks a log byte stream and returns the valid record prefix,
// the offset of the first byte past it, and the highest generation seen —
// the shared scan of Open (recovery) and DurableRecords (online abort).
func parseStream(stream []byte) (recs []Record, off uint64, maxGen uint32) {
	for {
		if int(off)+recHeaderSize > len(stream) {
			break
		}
		t := Type(stream[off])
		if t == 0 || t > TLSMRangeDel {
			break // end of valid records (zero fill or torn tail)
		}
		gen := binary.LittleEndian.Uint32(stream[off+1:])
		if gen == 0 || gen < maxGen {
			// Generations are nondecreasing along the stream; a smaller
			// one is a stale remnant of a previous log generation that a
			// later, shorter tail happened not to overwrite. Do not
			// resurrect it.
			break
		}
		txID := binary.LittleEndian.Uint64(stream[off+5:])
		a := binary.LittleEndian.Uint64(stream[off+13:])
		b := binary.LittleEndian.Uint64(stream[off+21:])
		plen := int(binary.LittleEndian.Uint16(stream[off+29:]))
		if int(off)+recHeaderSize+plen > len(stream) {
			break // torn record
		}
		hdr := stream[off : off+recHeaderSize]
		payload := stream[off+recHeaderSize : off+recHeaderSize+uint64(plen)]
		if binary.LittleEndian.Uint32(hdr[crcOff:]) != recCRC(hdr, payload) {
			break // torn or corrupt record (tear in header or payload)
		}
		recs = append(recs, Record{
			LSN:     LSN(off),
			Type:    t,
			Gen:     gen,
			TxID:    txID,
			A:       a,
			B:       b,
			Payload: append([]byte(nil), payload...),
		})
		maxGen = gen
		off += recHeaderSize + uint64(plen)
	}
	return recs, off, maxGen
}

// Open attaches to an existing log file and returns every durable record —
// the recovery scan. The returned Log appends after the recovered tail.
func Open(disk *sim.Disk, file sim.FileID) (*Log, []Record, error) {
	n, err := disk.NumPages(file)
	if err != nil {
		return nil, nil, err
	}
	stream, err := readStream(disk, file, n)
	if err != nil {
		return nil, nil, err
	}
	recs, off, maxGen := parseStream(stream)
	// The new incarnation writes a strictly larger generation, so records
	// it appends over a torn tail can never be confused with what the old
	// incarnation left behind.
	l := &Log{disk: disk, file: file, gen: maxGen + 1, off: off, flushed: off, pages: n}
	return l, recs, nil
}

// DurableRecords flushes buffered appends and re-reads the log's own file,
// returning every durable record — the recovery scan run online, for the
// abort-to-consistency replay of a cancelled statement. Unlike Open it
// neither mints a new Log nor bumps the generation: the caller keeps
// appending to this one, and replay records continue the same stream.
func (l *Log) DurableRecords() ([]Record, error) {
	if err := l.Flush(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	disk, file, n := l.disk, l.file, l.pages
	l.mu.Unlock()
	stream, err := readStream(disk, file, n)
	if err != nil {
		return nil, err
	}
	recs, _, _ := parseStream(stream)
	return recs, nil
}

// BulkState summarizes the recovery-relevant state of one interrupted bulk
// delete, distilled from the log by AnalyzeBulk.
type BulkState struct {
	TxID       uint64
	Table      uint64 // table heap file
	VictimFile uint64 // materialized victim list
	// Done lists structures fully processed (TStructDone seen).
	Done map[uint64]bool
	// Active maps every structure with a TStructStart but no TStructDone
	// to its latest checkpointed victim-row count, and Kinds to its kind
	// (0 heap, 1 index). A serial statement has at most one active
	// structure; a parallel one may have been interrupted with several
	// index passes mid-flight.
	Active map[uint64]uint64
	Kinds  map[uint64]uint64
	// InProgress mirrors the most recently started active structure, with
	// its Progress and Kind — the legacy single-pass view, still exact for
	// serial logs.
	InProgress    uint64
	HasInProgress bool
	Progress      uint64
	// Kind of the in-progress structure (0 heap, 1 index).
	Kind uint64
	// Finished reports whether TBulkEnd was reached (nothing to redo).
	Finished bool
	// Materialized maps a structure file to the row file holding its
	// victim list (key 0 = the global sorted RID list).
	Materialized map[uint64]uint64
}

// ProgressOf returns the checkpointed progress of a structure that was
// in-flight at the crash, and whether it was in-flight at all.
func (st *BulkState) ProgressOf(file uint64) (uint64, bool) {
	if st.Active == nil {
		return 0, false
	}
	p, ok := st.Active[file]
	return p, ok
}

// ClearActive forgets a structure's in-flight state — recovery uses it
// when the structure was rebuilt from scratch, so checkpointed progress
// into the damaged incarnation must not be skipped.
func (st *BulkState) ClearActive(file uint64) {
	delete(st.Active, file)
	delete(st.Kinds, file)
	if st.HasInProgress && st.InProgress == file {
		st.HasInProgress = false
		st.Progress = 0
	}
}

// AnalyzeBulk scans recovered records and returns the state of the most
// recent bulk delete, or ok=false when the log holds none. It is the
// single-statement view of AnalyzeBulks, kept for callers that only care
// about the last statement.
func AnalyzeBulk(recs []Record) (BulkState, bool) {
	sts := AnalyzeBulks(recs)
	if len(sts) == 0 {
		return BulkState{}, false
	}
	return sts[len(sts)-1], true
}

// AnalyzeBulks scans recovered records and returns the state of every bulk
// delete in the log, in TBulkStart order. Concurrent statements interleave
// their records through the shared ordered appender, so each record is
// routed to its statement by TxID; a crash can leave several statements
// unfinished at once, and recovery must roll each of them forward.
func AnalyzeBulks(recs []Record) []BulkState {
	byTx := make(map[uint64]*BulkState)
	var order []uint64
	for _, r := range recs {
		if r.Type == TBulkStart {
			if _, ok := byTx[r.TxID]; !ok {
				order = append(order, r.TxID)
			}
			byTx[r.TxID] = &BulkState{
				TxID:         r.TxID,
				Table:        r.A,
				VictimFile:   r.B,
				Done:         make(map[uint64]bool),
				Active:       make(map[uint64]uint64),
				Kinds:        make(map[uint64]uint64),
				Materialized: make(map[uint64]uint64),
			}
			continue
		}
		st, ok := byTx[r.TxID]
		if !ok {
			continue
		}
		switch r.Type {
		case TMaterialized:
			st.Materialized[r.A] = r.B
		case TStructStart:
			st.Active[r.A] = 0
			st.Kinds[r.A] = r.B
			st.InProgress = r.A
			st.Kind = r.B
			st.HasInProgress = true
			st.Progress = 0
		case TCheckpoint:
			if _, ok := st.Active[r.A]; ok {
				st.Active[r.A] = r.B
			}
			if st.HasInProgress && r.A == st.InProgress {
				st.Progress = r.B
			}
		case TStructDone:
			st.Done[r.A] = true
			delete(st.Active, r.A)
			delete(st.Kinds, r.A)
			if st.HasInProgress && st.InProgress == r.A {
				st.HasInProgress = false
				st.Progress = 0
			}
		case TBulkEnd:
			st.Finished = true
		}
	}
	out := make([]BulkState, 0, len(order))
	for _, tx := range order {
		out = append(out, *byTx[tx])
	}
	return out
}

// CountCommits returns the number of TCommit records among recovered
// records. Recovery fast-forwards the MVCC epoch clock by it: epochs are
// volatile (no durable structure stores one), but the clock must never
// rewind across a restart or a new delete could commit at an epoch an
// earlier incarnation already handed to snapshots. The catalog's persisted
// epoch plus the commit count of the log written since is a safe upper
// bound on the epochs ever given out.
func CountCommits(recs []Record) uint64 {
	var n uint64
	for _, r := range recs {
		if r.Type == TCommit {
			n++
		}
	}
	return n
}

// Move is one file migration distilled from the log: file A headed to
// device To, with Done reporting whether TMoveDone made it out.
type Move struct {
	TxID uint64
	File uint64
	To   uint64
	Done bool
}

// AnalyzeMoves scans recovered records and returns every file migration in
// the log, in TMoveStart order. Recovery redoes the unfinished ones: the
// move protocol flushes the file before TMoveStart and never frees the
// source until TMoveDone, so redoing a move is idempotent.
func AnalyzeMoves(recs []Record) []Move {
	var out []Move
	for _, r := range recs {
		switch r.Type {
		case TMoveStart:
			out = append(out, Move{TxID: r.TxID, File: r.A, To: r.B})
		case TMoveDone:
			for i := len(out) - 1; i >= 0; i-- {
				if out[i].File == r.A && !out[i].Done {
					out[i].Done = true
					break
				}
			}
		}
	}
	return out
}
