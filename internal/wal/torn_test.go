package wal

import (
	"testing"

	"bulkdel/internal/sim"
)

// encodeRec renders one record in wire form as generation gen would write it.
func encodeRec(gen uint32, t Type, tx, a, b uint64, payload []byte) []byte {
	l := &Log{gen: gen}
	if _, err := l.Append(t, tx, a, b, payload); err != nil {
		panic(err)
	}
	return l.buf
}

// tearNextFlush arranges a torn crash on the tail-page write of the next
// Flush: the flush reads the tail page back (1 I/O) and then writes it, so
// the crash lands on I/O +2 and persists only tearBytes of the new image.
func tearNextFlush(d *sim.Disk, l *Log, tearBytes int) {
	d.SetFaultPlan(sim.NewFaultPlan().
		CrashAtIO(2).
		TearFileWrite(l.FileID(), tearBytes))
}

func TestTornTailInsideHeader(t *testing.T) {
	d := testDisk()
	l := Create(d)
	if _, err := l.Append(TBegin, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	base := int(l.flushed % sim.PageSize)
	// The tear lands 10 bytes into the 35-byte header of the new record:
	// its type byte and generation persist, the length and crc do not.
	if _, err := l.Append(TCommit, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	tearNextFlush(d, l, base+10)
	if err := l.Flush(); !sim.IsCrash(err) {
		t.Fatalf("flush = %v, want crash", err)
	}
	d.SetFaultPlan(nil)
	_, recs, err := Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != TBegin {
		t.Fatalf("recovered %v, want only the begin record", recs)
	}
}

func TestTornTailInsidePayload(t *testing.T) {
	d := testDisk()
	l := Create(d)
	if _, err := l.Append(TBegin, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	base := int(l.flushed % sim.PageSize)
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := l.Append(TNote, 1, 2, 3, payload); err != nil {
		t.Fatal(err)
	}
	// Header fully persists (plausible type, length, crc); the payload is
	// cut 5 bytes in, so only the checksum can reject the record.
	tearNextFlush(d, l, base+recHeaderSize+5)
	if err := l.Flush(); !sim.IsCrash(err) {
		t.Fatalf("flush = %v, want crash", err)
	}
	d.SetFaultPlan(nil)
	_, recs, err := Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != TBegin {
		t.Fatalf("recovered %v, want only the begin record", recs)
	}
}

func TestStaleGenerationNotResurrected(t *testing.T) {
	// Hand-craft the platter image a torn generation hand-off could leave:
	// one valid generation-2 record, immediately followed by complete,
	// checksum-valid generation-1 records (an old bulk-start) that a
	// shorter new tail failed to overwrite. The scan must stop at the
	// generation decrease rather than resurrect the old bulk delete.
	d := testDisk()
	id := d.CreateFile()
	if _, err := d.Allocate(id); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, sim.PageSize)
	stream := encodeRec(2, TCommit, 9, 0, 0, nil)
	stream = append(stream, encodeRec(1, TBulkStart, 4, 7, 8, nil)...)
	stream = append(stream, encodeRec(1, TStructStart, 4, 7, 1, nil)...)
	copy(page, stream)
	if err := d.WritePage(id, 0, page); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(d, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != TCommit || recs[0].Gen != 2 {
		t.Fatalf("recovered %v, want only the gen-2 commit", recs)
	}
	if _, found := AnalyzeBulk(recs); found {
		t.Fatal("stale generation-1 bulk delete was resurrected")
	}
	if l.Generation() != 3 {
		t.Fatalf("new generation = %d, want 3", l.Generation())
	}
}

func TestGenerationBumpsAcrossReopens(t *testing.T) {
	d := testDisk()
	l := Create(d)
	if l.Generation() != 1 {
		t.Fatalf("fresh log generation = %d", l.Generation())
	}
	if _, err := l.Append(TBegin, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Gen != 1 || l2.Generation() != 2 {
		t.Fatalf("gen of record %d, new log %d; want 1 and 2", recs[0].Gen, l2.Generation())
	}
	if _, err := l2.Append(TCommit, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
	l3, recs, err := Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Gen != 2 || l3.Generation() != 3 {
		t.Fatalf("after second reopen: recs=%v gen=%d", recs, l3.Generation())
	}
}

func TestFlushZeroFillsRewrittenTail(t *testing.T) {
	d := testDisk()
	l := Create(d)
	if _, err := l.Append(TBegin, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Plant garbage after the durable tail, as a previous flush image of
	// this page would leave it before the zero-fill fix.
	raw := make([]byte, sim.PageSize)
	if err := d.ReadPage(l.FileID(), 0, raw); err != nil {
		t.Fatal(err)
	}
	for i := int(l.flushed); i < sim.PageSize; i++ {
		raw[i] = 0xFF
	}
	if err := d.WritePage(l.FileID(), 0, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TCommit, 1, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(l.FileID(), 0, raw); err != nil {
		t.Fatal(err)
	}
	for i := int(l.flushed); i < sim.PageSize; i++ {
		if raw[i] != 0 {
			t.Fatalf("byte %d past the tail = %x, want zero", i, raw[i])
		}
	}
	// And the stream itself still parses.
	_, recs, err := Open(d, l.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
}
