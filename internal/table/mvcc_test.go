package table

import (
	"testing"
	"time"

	"bulkdel/internal/cc"
	"bulkdel/internal/record"
)

// Unit tests for the volatile version store, exercised directly: retain →
// commit/abort visibility, horizon-driven pruning, birth stamping, and the
// index-reader/bulk-delete exclusion handshake. The integration behaviour
// (full read paths during a parked delete) lives in the root package's
// reads-during-delete smoke test.

func TestMVCCPendingVersionVisibleToAllSnapshots(t *testing.T) {
	clock := cc.NewEpochClock()
	m := NewMVCC(clock)
	rid := record.RID{Page: 3, Slot: 1}
	tok := m.NewToken()
	m.Retain(tok, rid, []byte{1, 2, 3})
	// Advance the clock well past the retain: pending versions (epoch 0)
	// stay visible to every snapshot until their delete commits.
	clock.Commit()
	clock.Commit()
	for _, s := range []uint64{0, 1, 2} {
		rec, ok := m.VisibleVersion(rid, s)
		if !ok || len(rec) != 3 {
			t.Fatalf("pending version invisible to snapshot %d (ok=%v rec=%v)", s, ok, rec)
		}
	}
	if m.LiveVersions() != 1 {
		t.Fatalf("live versions = %d, want 1", m.LiveVersions())
	}
}

func TestMVCCCommitStampsVisibilityBoundary(t *testing.T) {
	clock := cc.NewEpochClock()
	m := NewMVCC(clock)
	rid := record.RID{Page: 0, Slot: 4}
	sOld := clock.Snapshot() // epoch 0, opened before the delete commits
	tok := m.NewToken()
	m.Retain(tok, rid, []byte{9})
	e := m.CommitToken(tok)
	if e != 1 {
		t.Fatalf("commit epoch = %d, want 1", e)
	}
	if _, ok := m.VisibleVersion(rid, sOld); !ok {
		t.Fatal("snapshot older than the delete lost the retained version")
	}
	sNew := clock.Snapshot() // epoch 1: the delete already committed
	if _, ok := m.VisibleVersion(rid, sNew); ok {
		t.Fatal("snapshot opened after the commit still sees the deleted row")
	}
	clock.Release(sOld)
	clock.Release(sNew)
}

func TestMVCCAbortDiscardsPendingVersion(t *testing.T) {
	m := NewMVCC(cc.NewEpochClock())
	rid := record.RID{Page: 1, Slot: 0}
	tok := m.NewToken()
	m.Retain(tok, rid, []byte{7})
	m.AbortToken(tok)
	if _, ok := m.VisibleVersion(rid, 0); ok {
		t.Fatal("aborted retain still visible")
	}
	if m.LiveVersions() != 0 {
		t.Fatalf("live versions = %d after abort, want 0", m.LiveVersions())
	}
}

func TestMVCCPruneRespectsSnapshotHorizon(t *testing.T) {
	clock := cc.NewEpochClock()
	m := NewMVCC(clock)
	rid := record.RID{Page: 2, Slot: 2}
	s := clock.Snapshot()
	tok := m.NewToken()
	m.Retain(tok, rid, []byte{5})
	m.CommitToken(tok) // prunes internally, but the open snapshot pins it
	if m.LiveVersions() != 1 {
		t.Fatal("committed version pruned while a predating snapshot is open")
	}
	m.Prune()
	if m.LiveVersions() != 1 {
		t.Fatal("explicit prune dropped a version the open snapshot still needs")
	}
	clock.Release(s)
	m.Prune()
	if m.LiveVersions() != 0 {
		t.Fatalf("live versions = %d after the last snapshot closed, want 0", m.LiveVersions())
	}
}

func TestMVCCBirthFiltersYoungRows(t *testing.T) {
	clock := cc.NewEpochClock()
	m := NewMVCC(clock)
	rid := record.RID{Page: 0, Slot: 0}
	// Before any commit the clock is at 0 and births are implicit.
	m.RecordBirth(rid)
	if !m.BirthVisible(rid, 0) {
		t.Fatal("epoch-0 birth invisible to the epoch-0 snapshot")
	}
	clock.Commit() // clock → 1
	m.RecordBirth(rid)
	if m.BirthVisible(rid, 0) {
		t.Fatal("row born at epoch 1 visible to an epoch-0 snapshot")
	}
	if !m.BirthVisible(rid, 1) {
		t.Fatal("row born at epoch 1 invisible to an epoch-1 snapshot")
	}
}

// The index trees are safe for snapshot readers only while no bulk delete
// is mid-statement: BeginDelete drains readers before gates go offline,
// and TryEnterIndexRead diverts late readers to the heap-scan fallback.
func TestMVCCIndexReadersExcludeBulkDelete(t *testing.T) {
	m := NewMVCC(cc.NewEpochClock())
	if !m.TryEnterIndexRead() {
		t.Fatal("index read refused on an idle table")
	}
	started := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		close(started)
		m.BeginDelete()
		close(entered)
	}()
	<-started
	select {
	case <-entered:
		t.Fatal("BeginDelete proceeded over an open index reader")
	case <-time.After(50 * time.Millisecond):
	}
	m.ExitIndexRead()
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("BeginDelete never admitted after the reader drained")
	}
	if m.TryEnterIndexRead() {
		t.Fatal("index read admitted while a bulk delete is in flight")
	}
	m.EndDelete()
	if !m.TryEnterIndexRead() {
		t.Fatal("index read refused after the delete retired")
	}
	m.ExitIndexRead()
}

func TestMVCCRetainedBytesAccounting(t *testing.T) {
	clock := cc.NewEpochClock()
	m := NewMVCC(clock)
	s := clock.Snapshot()

	tok := m.NewToken()
	m.Retain(tok, record.RID{Page: 0, Slot: 0}, make([]byte, 64))
	m.Retain(tok, record.RID{Page: 0, Slot: 1}, make([]byte, 64))
	if got := m.RetainedBytes(); got != 128 {
		t.Fatalf("retained bytes = %d after two 64-byte retains, want 128", got)
	}
	m.CommitToken(tok) // pinned by the open snapshot, so nothing drops yet
	if got := m.RetainedBytes(); got != 128 {
		t.Fatalf("retained bytes = %d with the snapshot still open, want 128", got)
	}

	// An aborted single-row retain gives its bytes straight back.
	tok2 := m.NewToken()
	m.Retain(tok2, record.RID{Page: 1, Slot: 0}, make([]byte, 32))
	m.AbortToken(tok2)
	if got := m.RetainedBytes(); got != 128 {
		t.Fatalf("retained bytes = %d after abort, want 128", got)
	}

	// Closing the last snapshot lets pruning reclaim everything.
	clock.Release(s)
	m.Prune()
	if got := m.RetainedBytes(); got != 0 {
		t.Fatalf("retained bytes = %d after the horizon passed, want 0", got)
	}

	// Reset zeroes the footprint wholesale.
	tok3 := m.NewToken()
	m.Retain(tok3, record.RID{Page: 2, Slot: 0}, make([]byte, 16))
	m.Reset()
	if got := m.RetainedBytes(); got != 0 {
		t.Fatalf("retained bytes = %d after Reset, want 0", got)
	}
}
