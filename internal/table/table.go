// Package table ties a heap file and its B-link indexes into a catalog
// object and implements the paper's two baseline delete strategies:
//
//   - the *traditional* horizontal, record-at-a-time delete (with and
//     without pre-sorting the victim list — the paper's "sorted/trad" and
//     "not sorted/trad"), and
//   - *drop & create*: drop the secondary indexes, delete using only the
//     access-path index, and rebuild the dropped indexes afterwards.
//
// The vertical bulk delete itself — the paper's contribution — lives in
// package core and operates on the Target view exported from here.
package table

import (
	"fmt"
	"sort"
	"sync"

	"bulkdel/internal/btree"
	"bulkdel/internal/buffer"
	"bulkdel/internal/cc"
	"bulkdel/internal/heap"
	"bulkdel/internal/keyenc"
	"bulkdel/internal/record"
	"bulkdel/internal/xsort"
)

// DefaultSortBudget is the working memory used for index builds and victim
// sorting when the caller does not override it — 5 MB, the paper's default
// ("our prototype uses only 10 MB of main memory", half of which the
// experiments grant to sorting; Figures 7/8/10 use 5 MB).
const DefaultSortBudget = 5 << 20

// IndexDef describes one index over a single integer attribute.
type IndexDef struct {
	Name string
	// Field is the attribute position in the schema.
	Field int
	// KeyLen is the encoded key width (>= 8). Wider keys shrink fan-out
	// and grow the tree — the knob of the paper's Experiment 3.
	KeyLen int
	// Unique enforces key uniqueness and forces the index to be
	// processed before the table lock is released (paper §3.1).
	Unique bool
	// Clustered records that the heap is loaded in this attribute's
	// order, so RID order implies key order (paper's Experiment 5).
	Clustered bool
	// Priority ranks application-critical indexes for processing order.
	Priority int
}

// Index is one secondary or primary access path.
type Index struct {
	Def  IndexDef
	Tree *btree.Tree
	Gate *cc.Gate
	// Latch serializes online tree mutations against point/range reads
	// that run under a shared table lock. A B-link leaf insert shifts
	// entries before writing the new one, so an unlatched reader scanning
	// the same leaf can transiently see the displaced entry twice — a
	// duplicate row from a unique-index lookup (the ROADMAP churn issue).
	// Updaters (applyOpToTree) take it exclusively; index readers take it
	// shared. Bulk-delete passes never take it: they mutate trees only
	// while the gate protocol (offline gates + the exclusive table lock)
	// excludes gate-respecting readers.
	Latch sync.RWMutex
}

// EncodeKey encodes an attribute value for this index's key width.
func (ix *Index) EncodeKey(v int64) []byte {
	return keyenc.Int64Key(v, ix.Def.KeyLen)
}

// Table is a base table with its indexes. Heap is the storage behind the
// table: a single heap file, or a partitioned heap split on the table's
// delete key (heap.Partitioned) whose partitions can live on different
// devices.
type Table struct {
	Name   string
	Schema record.Schema
	Heap   heap.Store
	Idx    []*Index
	// Lock is the §3 coarse table lock. Create and ReattachForRecovery
	// give every table a private lock; a DB replaces it with the shared
	// instance from its cc.Manager so ordered multi-table acquisition and
	// the DML entry points contend on one object.
	Lock *cc.TableLock
	// Undeletable marks entries installed by concurrent transactions via
	// direct propagation during a bulk delete.
	Undeletable *cc.UndeletableSet
	// SortBudget is the working memory for index builds and victim sorts.
	SortBudget int
	// MVCC is the table's volatile snapshot-read state (nil when the DB
	// runs with snapshot reads disabled). See mvcc.go.
	MVCC *MVCC

	pool *buffer.Pool
}

// Create makes an empty table.
func Create(pool *buffer.Pool, name string, schema record.Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	h, err := heap.Create(pool, schema.Size)
	if err != nil {
		return nil, err
	}
	return &Table{
		Name:        name,
		Schema:      schema,
		Heap:        h,
		Lock:        &cc.TableLock{},
		Undeletable: cc.NewUndeletableSet(),
		SortBudget:  DefaultSortBudget,
		pool:        pool,
	}, nil
}

// CreatePartitioned makes an empty table whose heap is partitioned by spec.
// Partition device placement is the caller's concern (see internal/place).
func CreatePartitioned(pool *buffer.Pool, name string, schema record.Schema, spec heap.PartitionSpec) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	h, err := heap.CreatePartitioned(pool, schema, spec)
	if err != nil {
		return nil, err
	}
	return &Table{
		Name:        name,
		Schema:      schema,
		Heap:        h,
		Lock:        &cc.TableLock{},
		Undeletable: cc.NewUndeletableSet(),
		SortBudget:  DefaultSortBudget,
		pool:        pool,
	}, nil
}

// Pool returns the table's buffer pool.
func (t *Table) Pool() *buffer.Pool { return t.pool }

// ReattachForRecovery rebuilds a Table around an already-opened heap store
// during crash recovery; the caller attaches the reopened indexes to Idx.
func ReattachForRecovery(pool *buffer.Pool, name string, schema record.Schema, h heap.Store) *Table {
	return &Table{
		Name:        name,
		Schema:      schema,
		Heap:        h,
		Lock:        &cc.TableLock{},
		Undeletable: cc.NewUndeletableSet(),
		SortBudget:  DefaultSortBudget,
		pool:        pool,
	}
}

// FindIndex returns the index with the given name, or nil.
func (t *Table) FindIndex(name string) *Index {
	for _, ix := range t.Idx {
		if ix.Def.Name == name {
			return ix
		}
	}
	return nil
}

// IndexOnField returns the first index over the field, or nil.
func (t *Table) IndexOnField(field int) *Index {
	for _, ix := range t.Idx {
		if ix.Def.Field == field {
			return ix
		}
	}
	return nil
}

// Insert adds a row and maintains every online index; offline indexes
// receive the change through their side-file (blocking briefly when the
// side-file is quiesced).
func (t *Table) Insert(fields []int64) (record.RID, error) {
	rec, err := t.Schema.Encode(fields)
	if err != nil {
		return record.NilRID, err
	}
	rid, err := t.Heap.Insert(rec)
	if err != nil {
		return record.NilRID, err
	}
	// Birth is stamped before any index entry exists, so an index-path
	// snapshot reader that can see the entry always has the birth to
	// filter the row by.
	if t.MVCC != nil {
		t.MVCC.RecordBirth(rid)
	}
	for _, ix := range t.Idx {
		key := ix.EncodeKey(t.Schema.Field(rec, ix.Def.Field))
		if err := t.applyIndexOp(ix, cc.Op{Kind: cc.OpInsert, Key: key, RID: rid}, false); err != nil {
			return record.NilRID, err
		}
	}
	return rid, nil
}

// InsertDirect adds a row using direct propagation for offline indexes:
// the entry is installed immediately and marked undeletable so the running
// bulk delete cannot remove it (paper §3.1.2).
func (t *Table) InsertDirect(fields []int64) (record.RID, error) {
	rec, err := t.Schema.Encode(fields)
	if err != nil {
		return record.NilRID, err
	}
	rid, err := t.Heap.Insert(rec)
	if err != nil {
		return record.NilRID, err
	}
	if t.MVCC != nil {
		t.MVCC.RecordBirth(rid)
	}
	for _, ix := range t.Idx {
		key := ix.EncodeKey(t.Schema.Field(rec, ix.Def.Field))
		if err := t.applyIndexOp(ix, cc.Op{Kind: cc.OpInsert, Key: key, RID: rid}, true); err != nil {
			return record.NilRID, err
		}
	}
	return rid, nil
}

// applyIndexOp routes one index maintenance operation according to the
// index's gate state. direct selects direct propagation over the side-file.
func (t *Table) applyIndexOp(ix *Index, op cc.Op, direct bool) error {
	if ix.Gate == nil {
		return t.applyOpToTree(ix, op)
	}
	if direct {
		if ix.Gate.State() == cc.Offline && op.Kind == cc.OpInsert {
			t.Undeletable.Mark(op.Key, op.RID)
		}
		return t.applyOpToTree(ix, op)
	}
	// The state check and the append must be one atomic step: checking
	// State() first and appending after would let the bulk pass quiesce,
	// apply the final batch, and reopen the side-file in between — the
	// appended op would sit in the reopened side-file forever.
	queued, err := ix.Gate.AppendIfOffline(op)
	if !queued {
		return t.applyOpToTree(ix, op)
	}
	if err == cc.ErrQuiesced {
		// The bulk deleter is applying the final batch; wait for the
		// index to come online and update it directly.
		ix.Gate.WaitOnline()
		return t.applyOpToTree(ix, op)
	}
	return err
}

func (t *Table) applyOpToTree(ix *Index, op cc.Op) error {
	ix.Latch.Lock()
	defer ix.Latch.Unlock()
	if op.Kind == cc.OpInsert {
		return ix.Tree.Insert(op.Key, op.RID)
	}
	err := ix.Tree.Delete(op.Key, op.RID)
	if err == btree.ErrNotFound {
		// The bulk delete may have removed the entry already; a
		// side-file delete of such an entry is a no-op.
		return nil
	}
	return err
}

// DeleteRow removes one row by RID, maintaining all indexes (side-file
// aware). It reads the record first to compute the index keys.
func (t *Table) DeleteRow(rid record.RID) error {
	rec, err := t.Heap.Get(rid)
	if err != nil {
		return err
	}
	// Retain the image before tombstoning so a concurrent snapshot reader
	// always finds the row in the heap or the version store; the version
	// is stamped with a fresh epoch once the indexes are maintained.
	var token uint64
	if t.MVCC != nil {
		token = t.MVCC.NewToken()
		t.MVCC.Retain(token, rid, rec)
	}
	if err := t.Heap.Delete(rid); err != nil {
		if t.MVCC != nil {
			t.MVCC.AbortToken(token)
		}
		return err
	}
	// The slot is tombstoned: from here the delete commits even if index
	// maintenance fails below, so the retained version must be stamped
	// either way — a version left pending would stay visible to every
	// future snapshot and never prune.
	if t.MVCC != nil {
		defer t.MVCC.CommitToken(token)
	}
	for _, ix := range t.Idx {
		key := ix.EncodeKey(t.Schema.Field(rec, ix.Def.Field))
		if err := t.applyIndexOp(ix, cc.Op{Kind: cc.OpDelete, Key: key, RID: rid}, false); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the decoded row at rid.
func (t *Table) Get(rid record.RID) ([]int64, error) {
	rec, err := t.Heap.Get(rid)
	if err != nil {
		return nil, err
	}
	return t.Schema.Decode(rec)
}

// CreateIndex builds a new index over the current table contents: one heap
// scan feeding an external sort feeding a bottom-up bulk load — the
// "create" half of the drop-&-create baseline.
func (t *Table) CreateIndex(def IndexDef) (*Index, error) {
	if def.Field < 0 || def.Field >= t.Schema.NumFields {
		return nil, fmt.Errorf("table %s: index field %d out of range", t.Name, def.Field)
	}
	if def.KeyLen == 0 {
		def.KeyLen = keyenc.Int64Width
	}
	if def.KeyLen < keyenc.Int64Width {
		return nil, fmt.Errorf("table %s: key length %d below %d", t.Name, def.KeyLen, keyenc.Int64Width)
	}
	if t.FindIndex(def.Name) != nil {
		return nil, fmt.Errorf("table %s: index %q already exists", t.Name, def.Name)
	}
	tree, err := btree.Create(t.pool, def.KeyLen, def.Unique)
	if err != nil {
		return nil, err
	}
	ix := &Index{Def: def, Tree: tree, Gate: cc.NewGate()}
	if t.Heap.Count() > 0 {
		if err := t.buildIndex(ix); err != nil {
			return nil, err
		}
	}
	t.Idx = append(t.Idx, ix)
	return ix, nil
}

// buildIndex fills an empty tree from the heap via scan + sort + bulk load.
func (t *Table) buildIndex(ix *Index) error {
	rowSize := ix.Def.KeyLen + record.RIDSize
	srt, err := xsort.New(t.pool.Disk(), rowSize, t.SortBudget, nil)
	if err != nil {
		return err
	}
	row := make([]byte, rowSize)
	err = t.Heap.Scan(func(rid record.RID, rec []byte) error {
		for i := range row {
			row[i] = 0
		}
		keyenc.PutInt64(row, t.Schema.Field(rec, ix.Def.Field))
		record.PutRID(row[ix.Def.KeyLen:], rid)
		return srt.Add(row)
	})
	if err != nil {
		return err
	}
	it, err := srt.Finish()
	if err != nil {
		return err
	}
	defer it.Close()
	key := make([]byte, ix.Def.KeyLen)
	err = ix.Tree.BulkLoad(func() (btree.Entry, bool, error) {
		r, ok, err := it.Next()
		if err != nil || !ok {
			return btree.Entry{}, false, err
		}
		copy(key, r[:ix.Def.KeyLen])
		return btree.Entry{Key: key, RID: record.GetRID(r[ix.Def.KeyLen:])}, true, nil
	}, 1.0)
	return err
}

// DropIndex removes an index and its file.
func (t *Table) DropIndex(name string) error {
	for i, ix := range t.Idx {
		if ix.Def.Name == name {
			if err := ix.Tree.Drop(); err != nil {
				return err
			}
			t.Idx = append(t.Idx[:i], t.Idx[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("table %s: no index %q", t.Name, name)
}

// Repartition rebuilds the table's heap under a new partition spec — or
// back to a single file when spec is empty. Every RID changes, so each
// index is reset and rebuilt from the new heap (file IDs and device
// placements survive). The caller holds the table's exclusive lock and
// re-saves the catalog afterwards.
func (t *Table) Repartition(spec heap.PartitionSpec) error {
	var ns heap.Store
	if spec.NumParts() > 0 {
		ph, err := heap.CreatePartitioned(t.pool, t.Schema, spec)
		if err != nil {
			return err
		}
		ns = ph
	} else {
		f, err := heap.Create(t.pool, t.Schema.Size)
		if err != nil {
			return err
		}
		ns = f
	}
	err := t.Heap.Scan(func(_ record.RID, rec []byte) error {
		_, err := ns.Insert(rec)
		return err
	})
	if err != nil {
		_ = ns.Drop()
		return err
	}
	old := t.Heap
	t.Heap = ns
	// Every RID changed; volatile snapshot state would point at garbage.
	// The Structural lock the caller holds guarantees no snapshot reader
	// is open on the table.
	if t.MVCC != nil {
		t.MVCC.Reset()
	}
	for _, ix := range t.Idx {
		if err := ix.Tree.ResetEmpty(); err != nil {
			return err
		}
		if t.Heap.Count() > 0 {
			if err := t.buildIndex(ix); err != nil {
				return err
			}
		}
	}
	if err := old.Drop(); err != nil {
		return err
	}
	return t.Flush()
}

// Flush persists the heap and every index.
func (t *Table) Flush() error {
	if err := t.Heap.Flush(); err != nil {
		return err
	}
	for _, ix := range t.Idx {
		if err := ix.Tree.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// CheckConsistency verifies that the heap and every index agree exactly:
// each live record has one entry per index and no index holds extras. It is
// the integration-test oracle after bulk deletes.
func (t *Table) CheckConsistency() error {
	for _, ix := range t.Idx {
		ix.Latch.RLock()
		err := ix.Tree.CheckInvariants()
		ix.Latch.RUnlock()
		if err != nil {
			return fmt.Errorf("table %s index %s: %w", t.Name, ix.Def.Name, err)
		}
		if ix.Tree.Count() != t.Heap.Count() {
			return fmt.Errorf("table %s index %s: %d entries for %d records",
				t.Name, ix.Def.Name, ix.Tree.Count(), t.Heap.Count())
		}
	}
	// Collect heap contents once.
	type pair struct {
		key int64
		rid record.RID
	}
	perIndex := make([][]pair, len(t.Idx))
	err := t.Heap.Scan(func(rid record.RID, rec []byte) error {
		for i, ix := range t.Idx {
			perIndex[i] = append(perIndex[i], pair{key: t.Schema.Field(rec, ix.Def.Field), rid: rid})
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, ix := range t.Idx {
		want := perIndex[i]
		sort.Slice(want, func(a, b int) bool {
			if want[a].key != want[b].key {
				return want[a].key < want[b].key
			}
			return want[a].rid.Less(want[b].rid)
		})
		j := 0
		ix.Latch.RLock()
		err := ix.Tree.ScanAll(func(k []byte, rid record.RID) error {
			if j >= len(want) {
				return fmt.Errorf("index %s has extra entry %d/%s", ix.Def.Name, keyenc.Int64(k), rid)
			}
			if keyenc.Int64(k) != want[j].key || rid != want[j].rid {
				return fmt.Errorf("index %s entry %d is (%d,%s), heap says (%d,%s)",
					ix.Def.Name, j, keyenc.Int64(k), rid, want[j].key, want[j].rid)
			}
			j++
			return nil
		})
		ix.Latch.RUnlock()
		if err != nil {
			return fmt.Errorf("table %s: %w", t.Name, err)
		}
		if j != len(want) {
			return fmt.Errorf("table %s index %s: scanned %d entries, heap has %d",
				t.Name, ix.Def.Name, j, len(want))
		}
	}
	return nil
}
