package table

import (
	"fmt"
	"sort"

	"bulkdel/internal/btree"
	"bulkdel/internal/record"
)

// TraditionalDelete executes DELETE FROM t WHERE t.field IN (values) the
// way the paper describes traditional systems doing it — horizontally:
// for each victim key, probe the access-path index, and for each matching
// record delete it from the heap and *immediately* from every index, each
// B-tree traversed root-to-leaf individually.
//
// sortValues selects the paper's "sorted/trad" variant: the victim list is
// sorted first, which makes the index probes and (on a clustered index)
// the heap accesses sequential-ish. Without it this is "not sorted/trad",
// the behaviour the paper measured on a commercial RDBMS in Figure 1.
//
// It returns the number of deleted records.
func (t *Table) TraditionalDelete(field int, values []int64, sortValues bool) (int64, error) {
	access := t.IndexOnField(field)
	if access == nil {
		return 0, fmt.Errorf("table %s: traditional delete needs an index on field %d", t.Name, field)
	}
	vals := values
	if sortValues {
		vals = append([]int64(nil), values...)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		// Sorting the victim list is CPU work: n log n comparisons.
		n := len(vals)
		cmps := 0
		for m := n; m > 1; m >>= 1 {
			cmps += n
		}
		t.pool.Disk().ChargeCompares(cmps)
	}
	var deleted int64
	for _, v := range vals {
		rids, err := access.Tree.Search(access.EncodeKey(v))
		if err != nil {
			return deleted, err
		}
		for _, rid := range rids {
			// Read the record to learn the other indexes' keys.
			rec, err := t.Heap.Get(rid)
			if err != nil {
				return deleted, err
			}
			if err := t.Heap.Delete(rid); err != nil {
				return deleted, err
			}
			// Record-at-a-time: every index traversed root-to-leaf
			// for this single record.
			for _, ix := range t.Idx {
				key := ix.EncodeKey(t.Schema.Field(rec, ix.Def.Field))
				if err := ix.Tree.Delete(key, rid); err != nil {
					return deleted, fmt.Errorf("index %s: %w", ix.Def.Name, err)
				}
			}
			deleted++
		}
	}
	return deleted, nil
}

// DropCreateDelete executes the drop-&-create baseline from the paper's
// introduction: drop every index except the access path, run the
// traditional delete (now cheap — only one index to maintain), and rebuild
// the dropped indexes from scratch with scan + sort + bulk load.
func (t *Table) DropCreateDelete(field int, values []int64, sortValues bool) (int64, error) {
	access := t.IndexOnField(field)
	if access == nil {
		return 0, fmt.Errorf("table %s: drop&create delete needs an index on field %d", t.Name, field)
	}
	var dropped []IndexDef
	for _, ix := range append([]*Index(nil), t.Idx...) {
		if ix == access {
			continue
		}
		dropped = append(dropped, ix.Def)
		if err := t.DropIndex(ix.Def.Name); err != nil {
			return 0, err
		}
	}
	deleted, err := t.TraditionalDelete(field, values, sortValues)
	if err != nil {
		return deleted, err
	}
	for _, def := range dropped {
		if _, err := t.CreateIndex(def); err != nil {
			return deleted, fmt.Errorf("rebuilding index %s: %w", def.Name, err)
		}
	}
	return deleted, nil
}

// Contains reports whether any record with value v in the field exists,
// using the access-path index.
func (t *Table) Contains(field int, v int64) (bool, error) {
	ix := t.IndexOnField(field)
	if ix == nil {
		found := false
		err := t.Heap.Scan(func(_ record.RID, rec []byte) error {
			if t.Schema.Field(rec, field) == v {
				found = true
				return errStop
			}
			return nil
		})
		if err != nil && err != errStop {
			return false, err
		}
		return found, nil
	}
	ix.Latch.RLock()
	rids, err := ix.Tree.Search(ix.EncodeKey(v))
	ix.Latch.RUnlock()
	if err != nil {
		return false, err
	}
	return len(rids) > 0, nil
}

var errStop = fmt.Errorf("stop scan")

// Lookup returns the decoded rows whose field equals v, via the index on
// the field (error when none exists).
func (t *Table) Lookup(field int, v int64) ([][]int64, error) {
	ix := t.IndexOnField(field)
	if ix == nil {
		return nil, fmt.Errorf("table %s: no index on field %d", t.Name, field)
	}
	// A bulk delete's §3.1 early release admits readers while non-unique
	// index passes still rebuild their trees offline; wait for the gate
	// before traversing (updaters go through the side-file, reads cannot).
	if ix.Gate != nil {
		ix.Gate.WaitOnline()
	}
	// The latch closes the torn-leaf window against concurrent online
	// updaters (see Index.Latch).
	ix.Latch.RLock()
	rids, err := ix.Tree.Search(ix.EncodeKey(v))
	ix.Latch.RUnlock()
	if err != nil {
		return nil, err
	}
	out := make([][]int64, 0, len(rids))
	for _, rid := range rids {
		row, err := t.Get(rid)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// SetPolicyAll sets the traditional-delete page reclamation policy on every
// index (free-at-empty vs merge-at-half ablation).
func (t *Table) SetPolicyAll(p btree.Policy) {
	for _, ix := range t.Idx {
		ix.Tree.SetPolicy(p)
	}
}
