package table

import (
	"math/rand"
	"testing"
	"time"

	"bulkdel/internal/btree"
	"bulkdel/internal/buffer"
	"bulkdel/internal/cc"
	"bulkdel/internal/record"
	"bulkdel/internal/sim"
)

func testPool(pages int) *buffer.Pool {
	d := sim.NewDisk(sim.CostModel{
		Seek:         8 * time.Millisecond,
		Rotation:     4 * time.Millisecond,
		TransferPage: 1 * time.Millisecond,
	})
	return buffer.New(d, pages*sim.PageSize)
}

var testSchema = record.Schema{NumFields: 3, Size: 64}

// newTestTable builds a table with n rows: field0 = i, field1 = i*2,
// field2 = i%97, and indexes IA (unique, field0) and IB (field1).
func newTestTable(t *testing.T, n int) *Table {
	t.Helper()
	p := testPool(2048)
	tbl, err := Create(p, "R", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert([]int64{int64(i), int64(i * 2), int64(i % 97)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.CreateIndex(IndexDef{Name: "IA", Field: 0, Unique: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex(IndexDef{Name: "IB", Field: 1}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCreateInsertLookup(t *testing.T) {
	tbl := newTestTable(t, 500)
	if tbl.Heap.Count() != 500 {
		t.Fatalf("count = %d", tbl.Heap.Count())
	}
	rows, err := tbl.Lookup(0, 123)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != 246 {
		t.Fatalf("lookup = %v", rows)
	}
	ok, err := tbl.Contains(1, 246)
	if err != nil || !ok {
		t.Fatalf("contains(1,246) = %v, %v", ok, err)
	}
	ok, err = tbl.Contains(1, 247)
	if err != nil || ok {
		t.Fatalf("contains(1,247) = %v, %v", ok, err)
	}
	// Contains without an index falls back to a scan.
	ok, err = tbl.Contains(2, 96)
	if err != nil || !ok {
		t.Fatalf("contains(2,96) = %v, %v", ok, err)
	}
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertMaintainsIndexes(t *testing.T) {
	tbl := newTestTable(t, 100)
	rid, err := tbl.Insert([]int64{1000, 2000, 3})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tbl.Lookup(1, 2000)
	if err != nil || len(rows) != 1 {
		t.Fatalf("lookup after insert: %v, %v", rows, err)
	}
	got, err := tbl.Get(rid)
	if err != nil || got[0] != 1000 {
		t.Fatalf("get = %v, %v", got, err)
	}
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Unique violation.
	if _, err := tbl.Insert([]int64{50, 9999, 0}); err == nil {
		t.Fatal("duplicate unique key accepted")
	}
}

func TestDeleteRow(t *testing.T) {
	tbl := newTestTable(t, 100)
	rows, err := tbl.Lookup(0, 42)
	if err != nil || len(rows) != 1 {
		t.Fatal("setup lookup failed")
	}
	rids, err := tbl.IndexOnField(0).Tree.Search(tbl.IndexOnField(0).EncodeKey(42))
	if err != nil || len(rids) != 1 {
		t.Fatal("setup search failed")
	}
	if err := tbl.DeleteRow(rids[0]); err != nil {
		t.Fatal(err)
	}
	if ok, _ := tbl.Contains(0, 42); ok {
		t.Fatal("deleted row still found")
	}
	if tbl.Heap.Count() != 99 {
		t.Fatalf("count = %d", tbl.Heap.Count())
	}
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateIndexOnExistingData(t *testing.T) {
	tbl := newTestTable(t, 1000)
	ix, err := tbl.CreateIndex(IndexDef{Name: "IC", Field: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Count() != 1000 {
		t.Fatalf("new index has %d entries", ix.Tree.Count())
	}
	// Field2 = i % 97 has duplicates.
	rids, err := ix.Tree.Search(ix.EncodeKey(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 11 { // i in {5,102,199,...,975}: 11 values < 1000
		t.Fatalf("duplicates found: %d, want 11", len(rids))
	}
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Duplicate index name rejected; bad field rejected.
	if _, err := tbl.CreateIndex(IndexDef{Name: "IC", Field: 1}); err == nil {
		t.Fatal("duplicate index name accepted")
	}
	if _, err := tbl.CreateIndex(IndexDef{Name: "IX", Field: 9}); err == nil {
		t.Fatal("out-of-range field accepted")
	}
	if _, err := tbl.CreateIndex(IndexDef{Name: "IY", Field: 0, KeyLen: 4}); err == nil {
		t.Fatal("narrow key accepted")
	}
}

func TestDropIndex(t *testing.T) {
	tbl := newTestTable(t, 10)
	if err := tbl.DropIndex("IB"); err != nil {
		t.Fatal(err)
	}
	if tbl.FindIndex("IB") != nil {
		t.Fatal("index still in catalog")
	}
	if err := tbl.DropIndex("IB"); err == nil {
		t.Fatal("double drop accepted")
	}
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTraditionalDelete(t *testing.T) {
	for _, sorted := range []bool{false, true} {
		tbl := newTestTable(t, 2000)
		victims := []int64{}
		rng := rand.New(rand.NewSource(5))
		for _, v := range rng.Perm(2000)[:300] {
			victims = append(victims, int64(v))
		}
		n, err := tbl.TraditionalDelete(0, victims, sorted)
		if err != nil {
			t.Fatal(err)
		}
		if n != 300 {
			t.Fatalf("sorted=%v: deleted %d, want 300", sorted, n)
		}
		if tbl.Heap.Count() != 1700 {
			t.Fatalf("heap count = %d", tbl.Heap.Count())
		}
		for _, v := range victims[:20] {
			if ok, _ := tbl.Contains(0, v); ok {
				t.Fatalf("victim %d survives", v)
			}
		}
		if err := tbl.CheckConsistency(); err != nil {
			t.Fatalf("sorted=%v: %v", sorted, err)
		}
	}
}

func TestTraditionalDeleteAbsentKeysAreNoops(t *testing.T) {
	tbl := newTestTable(t, 100)
	n, err := tbl.TraditionalDelete(0, []int64{1, 5000, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTraditionalDeleteNeedsIndex(t *testing.T) {
	p := testPool(64)
	tbl, err := Create(p, "R", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.TraditionalDelete(0, []int64{1}, false); err == nil {
		t.Fatal("delete without access index should fail")
	}
}

func TestDropCreateDelete(t *testing.T) {
	tbl := newTestTable(t, 2000)
	if _, err := tbl.CreateIndex(IndexDef{Name: "IC", Field: 2}); err != nil {
		t.Fatal(err)
	}
	victims := make([]int64, 0, 300)
	for v := 100; v < 400; v++ {
		victims = append(victims, int64(v))
	}
	n, err := tbl.DropCreateDelete(0, victims, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("deleted %d", n)
	}
	// All three indexes exist again and agree with the heap.
	if tbl.FindIndex("IA") == nil || tbl.FindIndex("IB") == nil || tbl.FindIndex("IC") == nil {
		t.Fatal("indexes not rebuilt")
	}
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSideFileFlow(t *testing.T) {
	tbl := newTestTable(t, 200)
	ib := tbl.FindIndex("IB")
	ib.Gate.TakeOffline()
	// Inserts while IB is offline land in its side-file.
	if _, err := tbl.Insert([]int64{500, 1000, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert([]int64{501, 1002, 2}); err != nil {
		t.Fatal(err)
	}
	if ib.Gate.SideFile().Len() != 2 {
		t.Fatalf("side-file has %d ops", ib.Gate.SideFile().Len())
	}
	// IB itself has not seen the entries yet.
	if rids, _ := ib.Tree.Search(ib.EncodeKey(1000)); len(rids) != 0 {
		t.Fatal("offline index updated directly")
	}
	// IA (online) did.
	if ok, _ := tbl.Contains(0, 500); !ok {
		t.Fatal("online index missed the insert")
	}
	// Apply the side-file like the bulk deleter would.
	for _, op := range ib.Gate.SideFile().Quiesce() {
		if err := tbl.applyOpToTree(ib, op); err != nil {
			t.Fatal(err)
		}
	}
	ib.Gate.BringOnline()
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectPropagationMarksUndeletable(t *testing.T) {
	tbl := newTestTable(t, 100)
	ib := tbl.FindIndex("IB")
	ib.Gate.TakeOffline()
	if _, err := tbl.InsertDirect([]int64{900, 1800, 1}); err != nil {
		t.Fatal(err)
	}
	// Direct propagation updated the offline index immediately...
	if rids, _ := ib.Tree.Search(ib.EncodeKey(1800)); len(rids) != 1 {
		t.Fatal("direct propagation missed the offline index")
	}
	// ...and marked the new entry undeletable.
	rids, _ := ib.Tree.Search(ib.EncodeKey(1800))
	if !tbl.Undeletable.Contains(ib.EncodeKey(1800), rids[0]) {
		t.Fatal("entry not marked undeletable")
	}
	ib.Gate.BringOnline()
	if err := tbl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSideFileDeleteOfBulkDeletedEntryIsNoop(t *testing.T) {
	tbl := newTestTable(t, 100)
	ib := tbl.FindIndex("IB")
	// Simulate: bulk delete removed (84, rid) from IB already, then a
	// side-file delete for the same entry drains.
	rids, err := ib.Tree.Search(ib.EncodeKey(84))
	if err != nil || len(rids) != 1 {
		t.Fatal("setup failed")
	}
	if err := ib.Tree.Delete(ib.EncodeKey(84), rids[0]); err != nil {
		t.Fatal(err)
	}
	op := cc.Op{Kind: cc.OpDelete, Key: ib.EncodeKey(84), RID: rids[0]}
	if err := tbl.applyOpToTree(ib, op); err != nil {
		t.Fatalf("replaying delete of already-deleted entry: %v", err)
	}
}

func TestSetPolicyAll(t *testing.T) {
	tbl := newTestTable(t, 10)
	tbl.SetPolicyAll(btree.MergeAtHalf)
	for _, ix := range tbl.Idx {
		if ix.Tree.Policy() != btree.MergeAtHalf {
			t.Fatal("policy not propagated")
		}
	}
}

func TestCheckConsistencyDetectsDivergence(t *testing.T) {
	tbl := newTestTable(t, 50)
	ia := tbl.FindIndex("IA")
	// Remove an index entry behind the table's back.
	rids, err := ia.Tree.Search(ia.EncodeKey(10))
	if err != nil || len(rids) != 1 {
		t.Fatal("setup failed")
	}
	if err := ia.Tree.Delete(ia.EncodeKey(10), rids[0]); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CheckConsistency(); err == nil {
		t.Fatal("divergence not detected")
	}
}

func TestClusteredLoad(t *testing.T) {
	p := testPool(1024)
	tbl, err := Create(p, "R", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	// Load in field-0 order: the index on field 0 is clustered.
	for i := 0; i < 1000; i++ {
		if _, err := tbl.Insert([]int64{int64(i), int64(1000 - i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := tbl.CreateIndex(IndexDef{Name: "IA", Field: 0, Unique: true, Clustered: true})
	if err != nil {
		t.Fatal(err)
	}
	// Clustered: scanning the index in key order yields ascending RIDs.
	var prev record.RID = record.RID{Page: 0, Slot: 0}
	err = ix.Tree.ScanAll(func(k []byte, rid record.RID) error {
		if rid.Less(prev) {
			t.Fatalf("clustered index RIDs not ascending at %s", rid)
		}
		prev = rid
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
