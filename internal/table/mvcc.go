// Epoch-based MVCC snapshot state: the volatile version store that lets
// point lookups, range lookups, and scans proceed while a bulk delete
// holds the table's exclusive lock.
//
// The scheme is deliberately minimal. Deletes are the only versioned
// operation (the paper's workload), and nothing here is durable: a crash
// discards every snapshot, recovery rolls interrupted deletes forward and
// fast-forwards the epoch clock from the catalog + WAL commit count, so
// no durable structure ever references an epoch.
//
//   - Every row's slot carries a volatile *birth* epoch (the clock value
//     when it was inserted; absent = 0 = always visible).
//   - A delete retains each victim's bytes as a *pending* version before
//     tombstoning the slot, and stamps all its pending versions with a
//     fresh commit epoch E at its commit point (§3.1 early release for
//     bulk deletes; the index-maintenance step for single-row deletes).
//   - A reader at snapshot S sees a physical row iff birth ≤ S, and a
//     version iff birth ≤ S and (pending or E > S).
//
// Within one statement this gives repeatable reads: a row visible at the
// statement's first read stays visible (its delete, committing later,
// gets E > S), and a row deleted before the snapshot never reappears.
// Inserts are intentionally weaker — a concurrent insert may become
// visible mid-statement (read-committed for inserts); closing that would
// require stamping births atomically with the physical insert, which the
// delete-centric workload does not need.
package table

import (
	"math"
	"sort"
	"sync"

	"bulkdel/internal/cc"
	"bulkdel/internal/record"
)

// version is one retained pre-delete row image.
type version struct {
	rec   []byte
	birth uint64 // birth epoch of the row the image belongs to
	epoch uint64 // delete commit epoch; 0 = delete still in flight
}

// MVCC is a table's volatile multi-version state. All methods are safe
// for concurrent use. A nil *MVCC disables snapshot reads for the table.
type MVCC struct {
	// Clock is the DB-wide commit counter shared by every table.
	Clock *cc.EpochClock

	mu       sync.Mutex
	cond     *sync.Cond
	versions map[record.RID][]version
	births   map[record.RID]uint64
	pending  map[uint64][]record.RID // retain token → rids retained under it
	tokenSeq uint64
	retained int64 // lifetime retained-version count, for metrics
	liveByte int64 // bytes held by currently retained versions

	// Reader/bulk-pass coordination over the index trees: bulk passes
	// mutate trees latch-free (the gate protocol excludes gate-respecting
	// readers), so a snapshot reader may walk a tree only while no bulk
	// delete is in flight on the table. inflight counts statements between
	// BeginDelete and EndDelete; ireaders counts readers inside an index
	// walk. BeginDelete waits for ireaders to drain before the statement
	// may take gates offline; TryEnterIndexRead fails (sending the reader
	// to the visibility-filtered heap scan) while inflight > 0.
	ireaders int
	inflight int
}

// NewMVCC returns empty snapshot state bound to a clock.
func NewMVCC(clock *cc.EpochClock) *MVCC {
	m := &MVCC{
		Clock:    clock,
		versions: make(map[record.RID][]version),
		births:   make(map[record.RID]uint64),
		pending:  make(map[uint64][]record.RID),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// RecordBirth stamps a freshly inserted row with the current epoch. The
// zero epoch is the implicit default, so nothing is stored before the
// first commit ever bumps the clock.
func (m *MVCC) RecordBirth(rid record.RID) {
	e := m.Clock.Current()
	m.mu.Lock()
	if e == 0 {
		// A stale entry from a previous row in a reused slot must not
		// outlive that row.
		delete(m.births, rid)
	} else {
		m.births[rid] = e
	}
	m.mu.Unlock()
}

// NewToken opens a retain set for one deleting statement. Every victim the
// statement retains is grouped under the token and stamped together at
// CommitToken.
func (m *MVCC) NewToken() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tokenSeq++
	return m.tokenSeq
}

// Retain records a victim's pre-delete image as a pending version. Must be
// called before the slot is tombstoned, so no snapshot ever observes the
// row in neither place. The bytes are copied.
func (m *MVCC) Retain(token uint64, rid record.RID, rec []byte) {
	m.mu.Lock()
	m.versions[rid] = append(m.versions[rid], version{
		rec:   append([]byte(nil), rec...),
		birth: m.births[rid],
	})
	m.pending[token] = append(m.pending[token], rid)
	m.retained++
	m.liveByte += int64(len(rec))
	m.mu.Unlock()
}

// CommitToken allocates a fresh commit epoch, stamps every version the
// token retained with it, and returns it. Allocation and stamping happen
// under one mutex hold, so a reader whose snapshot postdates the epoch can
// never observe the versions still pending (they would flicker: pending is
// visible to everyone, the stamped epoch is not).
func (m *MVCC) CommitToken(token uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.Clock.Commit()
	for _, rid := range m.pending[token] {
		vs := m.versions[rid]
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].epoch == 0 {
				vs[i].epoch = e
				break
			}
		}
	}
	delete(m.pending, token)
	m.pruneLocked()
	return e
}

// AbortToken discards a token's pending versions — used when a single-row
// delete fails after retaining (the row is still live, so the image must
// not linger as an always-visible pending version).
func (m *MVCC) AbortToken(token uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rid := range m.pending[token] {
		vs := m.versions[rid]
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].epoch == 0 {
				m.liveByte -= int64(len(vs[i].rec))
				vs = append(vs[:i], vs[i+1:]...)
				break
			}
		}
		if len(vs) == 0 {
			delete(m.versions, rid)
		} else {
			m.versions[rid] = vs
		}
	}
	delete(m.pending, token)
}

// Prune drops versions no open snapshot can see. Called after commits and
// when a snapshot closes; with no snapshots open it empties the store.
func (m *MVCC) Prune() {
	m.mu.Lock()
	m.pruneLocked()
	m.mu.Unlock()
}

func (m *MVCC) pruneLocked() {
	horizon, ok := m.Clock.Horizon()
	for rid, vs := range m.versions {
		keep := vs[:0]
		for _, v := range vs {
			// Pending versions always stay; a committed version is needed
			// only while some snapshot predates its epoch.
			if v.epoch == 0 || (ok && v.epoch > horizon) {
				keep = append(keep, v)
			} else {
				m.liveByte -= int64(len(v.rec))
			}
		}
		if len(keep) == 0 {
			delete(m.versions, rid)
		} else {
			m.versions[rid] = keep
		}
	}
}

// VisibleVersion returns the retained image visible to snapshot s, if any.
func (m *MVCC) VisibleVersion(rid record.RID, s uint64) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, v := range m.versions[rid] {
		if v.birth <= s && (v.epoch == 0 || v.epoch > s) {
			return v.rec, true
		}
	}
	return nil, false
}

// BirthVisible reports whether the physical row at rid (if live) belongs
// to snapshot s: its birth predates the snapshot.
func (m *MVCC) BirthVisible(rid record.RID, s uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.births[rid] <= s
}

// visibleDeleted calls fn for every retained version visible to s, in
// RID order (deterministic output for scans). fn receives the version's
// bytes; it must not retain them.
func (m *MVCC) visibleDeleted(s uint64, fn func(rid record.RID, rec []byte)) {
	m.mu.Lock()
	rids := make([]record.RID, 0, len(m.versions))
	for rid := range m.versions {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
	for _, rid := range rids {
		for _, v := range m.versions[rid] {
			if v.birth <= s && (v.epoch == 0 || v.epoch > s) {
				fn(rid, v.rec)
				break // at most one version of a rid is visible to s
			}
		}
	}
	m.mu.Unlock()
}

// RetainedCount returns the lifetime number of retained versions.
func (m *MVCC) RetainedCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retained
}

// LiveVersions returns the number of currently retained versions.
func (m *MVCC) LiveVersions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.versions)
}

// RetainedBytes returns the bytes currently held by retained versions —
// the version store's live memory footprint. It rises as deletes retain
// pre-images and falls back to zero as pruning drops versions behind the
// snapshot horizon.
func (m *MVCC) RetainedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveByte
}

// Reset discards all snapshot state. Structural passes (repartition,
// rebalance, traditional/drop-create deletes, bulk updates) call it: they
// rewrite RIDs wholesale, and the Structural lock they hold guarantees no
// snapshot reader is open on the table.
func (m *MVCC) Reset() {
	m.mu.Lock()
	m.versions = make(map[record.RID][]version)
	m.births = make(map[record.RID]uint64)
	m.pending = make(map[uint64][]record.RID)
	m.liveByte = 0
	m.mu.Unlock()
}

// BeginDelete marks a bulk delete in flight and waits for index readers to
// drain. Must be called before the statement takes any gate offline; from
// then until EndDelete, snapshot readers fall back to the heap scan.
func (m *MVCC) BeginDelete() {
	m.mu.Lock()
	m.inflight++
	for m.ireaders > 0 {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// EndDelete retires BeginDelete. Deferred to the very end of the
// statement — after every index pass and side-file drain, when all gates
// are online again.
func (m *MVCC) EndDelete() {
	m.mu.Lock()
	m.inflight--
	m.cond.Broadcast()
	m.mu.Unlock()
}

// TryEnterIndexRead admits a snapshot reader to the index trees unless a
// bulk delete is in flight. The caller must ExitIndexRead after its tree
// walk. While any reader is inside, BeginDelete blocks, so the invariant
// "ireaders > 0 ⇒ every gate online and no bulk pass mutating a tree"
// holds without the reader ever waiting on a gate.
func (m *MVCC) TryEnterIndexRead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inflight > 0 {
		return false
	}
	m.ireaders++
	return true
}

// ExitIndexRead retires TryEnterIndexRead.
func (m *MVCC) ExitIndexRead() {
	m.mu.Lock()
	m.ireaders--
	m.cond.Broadcast()
	m.mu.Unlock()
}

// ---- Snapshot read paths ----

// SnapshotRow resolves one RID for snapshot s: the retained version if the
// row was deleted after the snapshot, the physical row if its birth
// predates it, nothing otherwise. Heap errors for vanished slots resolve
// through the version store (retention runs before tombstoning, so a
// visible row is always in one of the two places).
func (t *Table) SnapshotRow(rid record.RID, s uint64) ([]int64, bool, error) {
	m := t.MVCC
	if rec, ok := m.VisibleVersion(rid, s); ok {
		row, err := t.Schema.Decode(rec)
		return row, err == nil, err
	}
	rec, err := t.Heap.Get(rid)
	if err != nil {
		// The slot vanished (or was truncated) between the version check
		// and the read; whatever this snapshot may see is a version now.
		if rec2, ok := m.VisibleVersion(rid, s); ok {
			row, derr := t.Schema.Decode(rec2)
			return row, derr == nil, derr
		}
		return nil, false, nil
	}
	// Birth is checked after the read: if an insert reused the slot in
	// between, the new birth postdates s and the stale bytes are rejected.
	if !m.BirthVisible(rid, s) {
		if rec2, ok := m.VisibleVersion(rid, s); ok {
			row, derr := t.Schema.Decode(rec2)
			return row, derr == nil, derr
		}
		return nil, false, nil
	}
	row, err := t.Schema.Decode(rec)
	return row, err == nil, err
}

// SnapshotLookup returns the rows whose field equals v, as of snapshot s.
// usedIndex reports whether the index path served the lookup; false means
// a bulk delete was in flight and the visibility-filtered heap scan ran
// instead.
func (t *Table) SnapshotLookup(field int, v int64, s uint64) (rows [][]int64, usedIndex bool, err error) {
	m := t.MVCC
	ix := t.IndexOnField(field)
	if ix != nil && m.TryEnterIndexRead() {
		// No gate wait: ireaders > 0 keeps every gate online (BeginDelete
		// drains readers before any gate goes offline). The latch closes
		// the torn-leaf window against concurrent online updaters.
		ix.Latch.RLock()
		rids, serr := ix.Tree.Search(ix.EncodeKey(v))
		ix.Latch.RUnlock()
		m.ExitIndexRead()
		if serr != nil {
			return nil, true, serr
		}
		seen := make(map[record.RID]bool, len(rids))
		for _, rid := range rids {
			row, ok, rerr := t.SnapshotRow(rid, s)
			if rerr != nil {
				return nil, true, rerr
			}
			seen[rid] = true
			if ok {
				rows = append(rows, row)
			}
		}
		// Supplement with rows whose delete postdates the snapshot: their
		// index entries are already gone, only the version store has them.
		var derr error
		m.visibleDeleted(s, func(rid record.RID, rec []byte) {
			if derr != nil || seen[rid] || t.Schema.Field(rec, field) != v {
				return
			}
			row, e := t.Schema.Decode(rec)
			if e != nil {
				derr = e
				return
			}
			rows = append(rows, row)
		})
		return rows, true, derr
	}
	err = t.SnapshotScan(s, func(_ record.RID, row []int64) error {
		if row[field] == v {
			rows = append(rows, row)
		}
		return nil
	})
	return rows, false, err
}

// SnapshotLookupRIDs returns the RIDs of rows whose field equals v, as of
// snapshot s. RIDs of rows deleted after the snapshot are included: they
// name the retained images, not live slots.
func (t *Table) SnapshotLookupRIDs(field int, v int64, s uint64) (out []record.RID, usedIndex bool, err error) {
	m := t.MVCC
	ix := t.IndexOnField(field)
	if ix != nil && m.TryEnterIndexRead() {
		ix.Latch.RLock()
		rids, serr := ix.Tree.Search(ix.EncodeKey(v))
		ix.Latch.RUnlock()
		m.ExitIndexRead()
		if serr != nil {
			return nil, true, serr
		}
		seen := make(map[record.RID]bool, len(rids))
		for _, rid := range rids {
			_, ok, rerr := t.SnapshotRow(rid, s)
			if rerr != nil {
				return nil, true, rerr
			}
			seen[rid] = true
			if ok {
				out = append(out, rid)
			}
		}
		m.visibleDeleted(s, func(rid record.RID, rec []byte) {
			if !seen[rid] && t.Schema.Field(rec, field) == v {
				out = append(out, rid)
			}
		})
		return out, true, nil
	}
	err = t.SnapshotScan(s, func(rid record.RID, row []int64) error {
		if row[field] == v {
			out = append(out, rid)
		}
		return nil
	})
	return out, false, err
}

// SnapshotLookupRange returns the rows with lo ≤ field ≤ hi as of s,
// mirroring SnapshotLookup's index-or-scan structure.
func (t *Table) SnapshotLookupRange(field int, lo, hi int64, s uint64) (rows [][]int64, usedIndex bool, err error) {
	if lo > hi {
		return nil, true, nil
	}
	m := t.MVCC
	ix := t.IndexOnField(field)
	if ix != nil && m.TryEnterIndexRead() {
		// SearchRange's hi bound is exclusive; hi+1 would overflow at the
		// top of the key space, so MaxInt64 becomes an open-ended scan.
		var hiKey []byte
		if hi < math.MaxInt64 {
			hiKey = ix.EncodeKey(hi + 1)
		}
		var rids []record.RID
		ix.Latch.RLock()
		serr := ix.Tree.SearchRange(ix.EncodeKey(lo), hiKey, func(_ []byte, rid record.RID) error {
			rids = append(rids, rid)
			return nil
		})
		ix.Latch.RUnlock()
		m.ExitIndexRead()
		if serr != nil {
			return nil, true, serr
		}
		seen := make(map[record.RID]bool, len(rids))
		for _, rid := range rids {
			row, ok, rerr := t.SnapshotRow(rid, s)
			if rerr != nil {
				return nil, true, rerr
			}
			seen[rid] = true
			if ok {
				rows = append(rows, row)
			}
		}
		var derr error
		m.visibleDeleted(s, func(rid record.RID, rec []byte) {
			fv := t.Schema.Field(rec, field)
			if derr != nil || seen[rid] || fv < lo || fv > hi {
				return
			}
			row, e := t.Schema.Decode(rec)
			if e != nil {
				derr = e
				return
			}
			rows = append(rows, row)
		})
		return rows, true, derr
	}
	err = t.SnapshotScan(s, func(_ record.RID, row []int64) error {
		if row[field] >= lo && row[field] <= hi {
			rows = append(rows, row)
		}
		return nil
	})
	return rows, false, err
}

// SnapshotScan visits every row visible to snapshot s: one physical pass
// over the heap (each live slot resolved live against the version store),
// then the visible versions of rows whose slots were already tombstoned or
// truncated. The emitted set is exact; order is physical for surviving
// rows with retained rows appended in RID order.
func (t *Table) SnapshotScan(s uint64, fn func(rid record.RID, row []int64) error) error {
	m := t.MVCC
	emitted := make(map[record.RID]bool)
	err := t.Heap.Scan(func(rid record.RID, rec []byte) error {
		// Queried live, per slot: a delete may land mid-scan, but it
		// retains before it tombstones, so every visible row is observed
		// in at least one of its two homes; emitted dedupes the overlap.
		if vrec, ok := m.VisibleVersion(rid, s); ok {
			emitted[rid] = true
			row, err := t.Schema.Decode(vrec)
			if err != nil {
				return err
			}
			return fn(rid, row)
		}
		if !m.BirthVisible(rid, s) {
			return nil
		}
		emitted[rid] = true
		row, err := t.Schema.Decode(rec)
		if err != nil {
			return err
		}
		return fn(rid, row)
	})
	if err != nil {
		return err
	}
	var derr error
	m.visibleDeleted(s, func(rid record.RID, rec []byte) {
		if derr != nil || emitted[rid] {
			return
		}
		row, e := t.Schema.Decode(rec)
		if e != nil {
			derr = e
			return
		}
		derr = fn(rid, row)
	})
	return derr
}
