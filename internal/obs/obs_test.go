package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"bulkdel/internal/buffer"
	"bulkdel/internal/sim"
)

func TestSnapshotSubAndAdd(t *testing.T) {
	a := Snapshot{
		Clock:    10 * time.Millisecond,
		Disk:     sim.Stats{Reads: 5, Writes: 2, RandomOps: 3, SeqOps: 4},
		Pool:     buffer.Stats{Hits: 10, Misses: 2},
		WALBytes: 100,
	}
	b := Snapshot{
		Clock:    25 * time.Millisecond,
		Disk:     sim.Stats{Reads: 9, Writes: 7, RandomOps: 4, SeqOps: 12},
		Pool:     buffer.Stats{Hits: 30, Misses: 3},
		WALBytes: 164,
	}
	d := b.Sub(a)
	if d.Elapsed != 15*time.Millisecond {
		t.Errorf("Elapsed = %v, want 15ms", d.Elapsed)
	}
	if d.Reads != 4 || d.Writes != 5 || d.Seeks != 1 || d.SeqOps != 8 {
		t.Errorf("disk delta = %+v", d)
	}
	if d.Hits != 20 || d.Misses != 1 {
		t.Errorf("pool delta hits=%d misses=%d", d.Hits, d.Misses)
	}
	if d.WALBytes != 64 {
		t.Errorf("WALBytes = %d, want 64", d.WALBytes)
	}

	var sum Delta
	sum.Add(d)
	sum.Add(d)
	if sum.Reads != 8 || sum.Elapsed != 30*time.Millisecond || sum.WALBytes != 128 {
		t.Errorf("Add: %+v", sum)
	}
}

func TestSnapshotSubSaturates(t *testing.T) {
	// A counter reset between snapshots must yield zero, not wrap.
	before := Snapshot{Clock: 5 * time.Millisecond, Disk: sim.Stats{Reads: 100}, WALBytes: 50}
	after := Snapshot{Clock: 2 * time.Millisecond, Disk: sim.Stats{Reads: 3}}
	d := after.Sub(before)
	if d.Reads != 0 || d.WALBytes != 0 || d.Elapsed != 0 {
		t.Errorf("saturating sub failed: %+v", d)
	}
}

func TestHitRatio(t *testing.T) {
	if hr := (Delta{}).HitRatio(); hr != -1 {
		t.Errorf("empty HitRatio = %v, want -1", hr)
	}
	if hr := (Delta{Hits: 3, Misses: 1}).HitRatio(); hr != 0.75 {
		t.Errorf("HitRatio = %v, want 0.75", hr)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[uint64]string{
		0:       "0B",
		54:      "54B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
	}
	for n, want := range cases {
		if got := FmtBytes(n); got != want {
			t.Errorf("FmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

// diskSource builds a real disk+pool pair and a file with one page to read.
func diskSource(t *testing.T) (Source, *sim.Disk, *buffer.Pool, sim.FileID) {
	t.Helper()
	disk := sim.NewDisk(sim.DefaultCostModel())
	pool := buffer.New(disk, 64*sim.PageSize)
	id := disk.CreateFile()
	f, err := pool.NewPage(id)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f, true)
	if err := pool.FlushFile(id); err != nil {
		t.Fatal(err)
	}
	return Source{Disk: disk, Pool: pool}, disk, pool, id
}

func TestCaptureAgainstRealCounters(t *testing.T) {
	src, disk, pool, id := diskSource(t)
	before := src.Capture()
	// One hit (the page is resident), then work the disk directly.
	f, err := pool.Get(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f, false)
	buf := make([]byte, sim.PageSize)
	if err := disk.ReadPage(id, 0, buf); err != nil {
		t.Fatal(err)
	}
	d := src.Capture().Sub(before)
	if d.Reads != 1 {
		t.Errorf("Reads = %d, want 1", d.Reads)
	}
	if d.Hits != 1 || d.Misses != 0 {
		t.Errorf("pool hits=%d misses=%d, want 1/0", d.Hits, d.Misses)
	}
	if d.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", d.Elapsed)
	}
}

func TestTraceTree(t *testing.T) {
	src, disk, _, id := diskSource(t)
	tr := NewTrace("stmt", "test", src)
	p1 := tr.Root().Child("phase-1", "first")
	buf := make([]byte, sim.PageSize)
	if err := disk.ReadPage(id, 0, buf); err != nil {
		t.Fatal(err)
	}
	p1.Set("rows", "7")
	p1.Finish()
	p2 := tr.Root().Child("phase-2", "")
	sub := p2.Child("sub", "")
	sub.Finish()
	p2.Finish()
	tr.Finish()

	if got := tr.Find("phase-1").Delta().Reads; got != 1 {
		t.Errorf("phase-1 reads = %d, want 1", got)
	}
	if tr.Find("phase-2").Delta().Reads != 0 {
		t.Errorf("phase-2 charged reads it did not do")
	}
	if tr.Find("sub") == nil || tr.Find("missing") != nil {
		t.Errorf("Find misbehaves")
	}
	root := tr.Root()
	if root.End <= root.Start {
		t.Errorf("root span not closed: [%v, %v]", root.Start, root.End)
	}
	// Root covers at least the sum of its children's reads.
	if root.IO.Reads != 1 {
		t.Errorf("root reads = %d, want 1", root.IO.Reads)
	}

	out := tr.Format()
	for _, want := range []string{"stmt", "phase-1", "└─ sub", "rows=7", "reads=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestTraceFinishClosesOpenDescendants(t *testing.T) {
	src, _, _, _ := diskSource(t)
	tr := NewTrace("stmt", "", src)
	open := tr.Root().Child("never-finished", "")
	tr.Finish()
	if open.End < open.Start {
		t.Errorf("descendant left open after trace Finish")
	}
	// Finishing again is a no-op.
	end := open.End
	open.Finish()
	if open.End != end {
		t.Errorf("double Finish changed End")
	}
}

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.Finish()
	s.Set("k", "v")
	if c := s.Child("x", ""); c != nil {
		t.Errorf("nil.Child = %v, want nil", c)
	}
	if d := s.Delta(); d != (Delta{}) {
		t.Errorf("nil.Delta = %+v, want zero", d)
	}
	var tr *Trace
	tr.Finish()
	if tr.Find("x") != nil || tr.Format() != "" {
		t.Errorf("nil trace misbehaves")
	}
	if string(tr.RawJSON()) != "null" {
		t.Errorf("nil trace RawJSON = %s", tr.RawJSON())
	}
}

func TestTraceJSONStable(t *testing.T) {
	src, disk, _, id := diskSource(t)
	tr := NewTrace("stmt", "d", src)
	sp := tr.Root().Child("phase", "")
	buf := make([]byte, sim.PageSize)
	if err := disk.ReadPage(id, 0, buf); err != nil {
		t.Fatal(err)
	}
	sp.Finish()
	tr.Finish()
	a, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("JSON not stable across calls")
	}
	var decoded struct {
		Name     string `json:"name"`
		Children []struct {
			Name string `json:"name"`
			IO   struct {
				Reads uint64 `json:"reads"`
			} `json:"io"`
		} `json:"children"`
	}
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a)
	}
	if decoded.Name != "stmt" || len(decoded.Children) != 1 || decoded.Children[0].IO.Reads != 1 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pages_read")
	c.Add(3)
	r.Counter("pages_read").Add(2) // same counter by name
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	r.Gauge("capacity").Set(42)
	h := r.Histogram("latency")
	h.Observe(3 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(500 * time.Microsecond)

	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "pages_read" || snap.Counters[0].Value != 5 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 42 {
		t.Errorf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Count != 3 || hs.MinUS != 3 || hs.MaxUS != 500 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	if hs.SumUS != 1003 {
		t.Errorf("histogram sum = %v us", hs.SumUS)
	}
	var total uint64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("bucket counts sum to %d, want 3", total)
	}
	if _, err := r.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra").Add(1)
	r.Counter("alpha").Add(1)
	r.Counter("mid").Add(1)
	snap := r.Snapshot()
	var names []string
	for _, c := range snap.Counters {
		names = append(names, c.Name)
	}
	if strings.Join(names, ",") != "alpha,mid,zebra" {
		t.Errorf("counters not name-sorted: %v", names)
	}
}

func TestObserverAggregates(t *testing.T) {
	src, disk, _, id := diskSource(t)
	o := NewObserver()
	for i := 0; i < 3; i++ {
		tr := NewTrace("bulk-delete", "", src)
		buf := make([]byte, sim.PageSize)
		if err := disk.ReadPage(id, 0, buf); err != nil {
			t.Fatal(err)
		}
		tr.Finish()
		o.OnTrace(tr)
	}
	reg := o.Registry()
	if got := reg.Counter("statements_traced").Value(); got != 3 {
		t.Errorf("statements_traced = %d, want 3", got)
	}
	if got := reg.Counter("pages_read").Value(); got != 3 {
		t.Errorf("pages_read = %d, want 3", got)
	}
	if o.LastTrace() == nil || len(o.Traces()) != 3 {
		t.Errorf("trace ring: last=%v n=%d", o.LastTrace(), len(o.Traces()))
	}
}

func TestObserverRingBounded(t *testing.T) {
	src, _, _, _ := diskSource(t)
	o := NewObserver()
	for i := 0; i < maxKeptTraces+10; i++ {
		tr := NewTrace("s", "", src)
		tr.Finish()
		o.OnTrace(tr)
	}
	if n := len(o.Traces()); n != maxKeptTraces {
		t.Errorf("ring holds %d traces, want %d", n, maxKeptTraces)
	}
}

// TestConcurrentUse drives the registry, the observer, and span creation
// from many goroutines; run with -race to verify the locking.
func TestConcurrentUse(t *testing.T) {
	src, _, _, _ := diskSource(t)
	o := NewObserver()
	tr := NewTrace("stmt", "", src)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.Registry().Counter("c").Add(1)
				o.Registry().Histogram("h").Observe(time.Duration(i) * time.Microsecond)
				sp := tr.Root().Child("child", "")
				sp.Set("g", "x")
				sp.Finish()
				t2 := NewTrace("t", "", src)
				t2.Finish()
				o.OnTrace(t2)
			}
		}(g)
	}
	wg.Wait()
	tr.Finish()
	if got := o.Registry().Counter("c").Value(); got != 8*200 {
		t.Errorf("counter = %d, want %d", got, 8*200)
	}
	if len(tr.Root().Children) != 8*200 {
		t.Errorf("children = %d", len(tr.Root().Children))
	}
	if _, err := tr.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestGaugeSetMax verifies the atomic high-water-mark update: sequentially
// it never lowers the value, and concurrently no peak is lost to a
// read-then-set race (run with -race).
func TestGaugeSetMax(t *testing.T) {
	g := NewRegistry().Gauge("peak")
	g.SetMax(5)
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	var wg sync.WaitGroup
	for i := int64(1); i <= 64; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			g.SetMax(n)
		}(i)
	}
	wg.Wait()
	if got := g.Value(); got != 64 {
		t.Fatalf("concurrent SetMax peak = %d, want 64", got)
	}
}
