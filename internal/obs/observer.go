package obs

import "sync"

// maxKeptTraces bounds the observer's trace ring.
const maxKeptTraces = 16

// Observer is the per-database observability hub: it owns the metrics
// registry and collects the traces of completed statements. The engine
// calls OnTrace after every traced statement; the public API exposes the
// observer so applications and tools can read metrics and pull the latest
// EXPLAIN ANALYZE data. Safe for concurrent use.
type Observer struct {
	mu     sync.Mutex
	reg    *Registry
	events *EventLog
	traces []*Trace
}

// NewObserver returns an observer with an empty registry and event log.
func NewObserver() *Observer {
	return &Observer{reg: NewRegistry(), events: NewEventLog()}
}

// Registry returns the observer's metrics registry.
func (o *Observer) Registry() *Registry { return o.reg }

// Events returns the observer's statement event log (nil-safe).
func (o *Observer) Events() *EventLog {
	if o == nil {
		return nil
	}
	return o.events
}

// OnTrace records a completed trace: it is kept in a bounded ring (newest
// last) and its root-span I/O is folded into the registry's aggregate
// counters, so the registry tracks the engine's cumulative traced work.
func (o *Observer) OnTrace(t *Trace) {
	if o == nil || t == nil {
		return
	}
	root := t.Root()
	d := root.Delta()
	o.reg.Counter("statements_traced").Add(1)
	o.reg.Counter("pages_read").Add(int64(d.Reads))
	o.reg.Counter("pages_written").Add(int64(d.Writes))
	o.reg.Counter("seeks").Add(int64(d.Seeks))
	o.reg.Counter("pool_hits").Add(int64(d.Hits))
	o.reg.Counter("pool_misses").Add(int64(d.Misses))
	o.reg.Counter("wal_bytes").Add(int64(d.WALBytes))
	if d.Faults > 0 {
		o.reg.Counter("faults_injected").Add(int64(d.Faults))
	}
	o.reg.Histogram("statement_elapsed").Observe(d.Elapsed)

	o.mu.Lock()
	o.traces = append(o.traces, t)
	if len(o.traces) > maxKeptTraces {
		o.traces = o.traces[len(o.traces)-maxKeptTraces:]
	}
	o.mu.Unlock()
}

// LastTrace returns the most recently recorded trace, or nil.
func (o *Observer) LastTrace() *Trace {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.traces) == 0 {
		return nil
	}
	return o.traces[len(o.traces)-1]
}

// Traces returns the kept traces, oldest first.
func (o *Observer) Traces() []*Trace {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Trace, len(o.traces))
	copy(out, o.traces)
	return out
}
