package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"time"
)

// Trace is a tree of spans describing one statement's execution phases,
// timed by the simulated clock and carrying per-span I/O attribution. The
// bulk-delete engine opens one child span per plan phase (victim collection,
// access-index pass, heap pass, one span per remaining index, ...); each
// span's Delta is the counter diff between its start and finish.
//
// A Trace is safe for concurrent use, but attribution assumes the spans of
// one trace open and close sequentially (the engine runs its passes on one
// goroutine); concurrently open sibling spans each charge themselves all
// work done while they were open.
type Trace struct {
	mu   sync.Mutex
	src  Source
	root *Span
}

// NewTrace starts a trace whose root span begins immediately.
func NewTrace(name, detail string, src Source) *Trace {
	t := &Trace{src: src}
	t.root = &Span{Name: name, Detail: detail, tr: t, open: true}
	snap := src.Capture()
	t.root.begin = snap
	t.root.Start = snap.Clock
	return t
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Finish closes the root span (and any still-open descendants).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root.finishLocked(t.src.Capture())
}

// Span is one node of the trace tree.
type Span struct {
	Name     string
	Detail   string
	Start    time.Duration // simulated clock at span start
	End      time.Duration // simulated clock at span finish
	IO       Delta         // counter diff over the span's lifetime
	Attrs    []Attr        // ordered key/value annotations
	Children []*Span

	tr    *Trace
	begin Snapshot
	open  bool
}

// Attr is one span annotation; order is preserved for stable rendering.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Child opens a sub-span. Nil-safe: a nil receiver returns nil, so callers
// can trace optionally without guarding every call site.
func (s *Span) Child(name, detail string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	c := &Span{Name: name, Detail: detail, tr: s.tr, open: true}
	snap := s.tr.src.Capture()
	c.begin = snap
	c.Start = snap.Clock
	s.Children = append(s.Children, c)
	return c
}

// Finish closes the span, computing its I/O delta. Nil-safe; finishing a
// finished span is a no-op.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.finishLocked(s.tr.src.Capture())
}

func (s *Span) finishLocked(snap Snapshot) {
	for _, c := range s.Children {
		c.finishLocked(snap)
	}
	if !s.open {
		return
	}
	s.open = false
	s.End = snap.Clock
	s.IO = snap.Sub(s.begin)
}

// Set attaches a string annotation. Nil-safe.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Delta returns the span's I/O attribution (zero for a nil span).
func (s *Span) Delta() Delta {
	if s == nil {
		return Delta{}
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.IO
}

// Find returns the first span (depth-first) with the given name, or nil.
func (t *Trace) Find(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return findSpan(t.root, name)
}

func findSpan(s *Span, name string) *Span {
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if f := findSpan(c, name); f != nil {
			return f
		}
	}
	return nil
}

// Format renders the trace as an indented phase tree with per-span I/O.
func (t *Trace) Format() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	renderSpan(&b, t.root, "", true, true)
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, prefix string, last, root bool) {
	connector := "├─ "
	childPrefix := prefix + "│  "
	if last {
		connector = "└─ "
		childPrefix = prefix + "   "
	}
	if root {
		connector = ""
		childPrefix = "   "
	}
	b.WriteString(prefix + connector + s.Name)
	if s.Detail != "" {
		b.WriteString("  " + s.Detail)
	}
	b.WriteString("  [" + s.IO.String() + "]")
	for _, a := range s.Attrs {
		b.WriteString("  " + a.Key + "=" + a.Value)
	}
	b.WriteString("\n")
	for i, c := range s.Children {
		renderSpan(b, c, childPrefix, i == len(s.Children)-1, false)
	}
}

// spanJSON is the wire form of one span; field order is fixed, durations
// are integral microseconds, so the encoding is stable across runs.
type spanJSON struct {
	Name      string     `json:"name"`
	Detail    string     `json:"detail,omitempty"`
	StartUS   int64      `json:"start_us"`
	ElapsedUS int64      `json:"elapsed_us"`
	IO        DeltaWire  `json:"io"`
	Attrs     []Attr     `json:"attrs,omitempty"`
	Children  []spanJSON `json:"children,omitempty"`
}

// DeltaWire is the stable JSON form of a Delta.
type DeltaWire struct {
	ElapsedUS   int64  `json:"elapsed_us"`
	Reads       uint64 `json:"reads"`
	Writes      uint64 `json:"writes"`
	Seeks       uint64 `json:"seeks"`
	NearOps     uint64 `json:"near_ops"`
	SeqOps      uint64 `json:"seq_ops"`
	ChainedRuns uint64 `json:"chained_runs"`
	Allocated   uint64 `json:"allocated"`
	Compares    uint64 `json:"compares"`
	Records     uint64 `json:"records"`
	Hits        uint64 `json:"pool_hits"`
	Misses      uint64 `json:"pool_misses"`
	Evictions   uint64 `json:"evictions"`
	DirtyEvicts uint64 `json:"dirty_evicts"`
	WALBytes    uint64 `json:"wal_bytes"`
	Faults      uint64 `json:"faults_injected,omitempty"`
}

// Wire converts the delta to its stable JSON form.
func (d Delta) Wire() DeltaWire {
	return DeltaWire{
		ElapsedUS:   d.Elapsed.Microseconds(),
		Reads:       d.Reads,
		Writes:      d.Writes,
		Seeks:       d.Seeks,
		NearOps:     d.NearOps,
		SeqOps:      d.SeqOps,
		ChainedRuns: d.ChainedRuns,
		Allocated:   d.Allocated,
		Compares:    d.Compares,
		Records:     d.Records,
		Hits:        d.Hits,
		Misses:      d.Misses,
		Evictions:   d.Evictions,
		DirtyEvicts: d.DirtyEvicts,
		WALBytes:    d.WALBytes,
		Faults:      d.Faults,
	}
}

func toSpanJSON(s *Span) spanJSON {
	out := spanJSON{
		Name:      s.Name,
		Detail:    s.Detail,
		StartUS:   s.Start.Microseconds(),
		ElapsedUS: (s.End - s.Start).Microseconds(),
		IO:        s.IO.Wire(),
		Attrs:     s.Attrs,
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, toSpanJSON(c))
	}
	return out
}

// JSON encodes the trace with a stable schema (fixed key order, integral
// microsecond durations).
func (t *Trace) JSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.MarshalIndent(toSpanJSON(t.root), "", "  ")
}

// RawJSON is JSON() without error plumbing for embedding in larger
// documents; it returns "null" on a nil trace.
func (t *Trace) RawJSON() json.RawMessage {
	b, err := t.JSON()
	if err != nil {
		return json.RawMessage("null")
	}
	return json.RawMessage(b)
}
