package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not zero")
	}

	// A single observation: every quantile is it.
	h.Observe(100 * time.Microsecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 100*time.Microsecond {
			t.Fatalf("single-sample q=%g = %v, want 100µs", q, got)
		}
	}

	// 1..100µs uniformly: percentiles must land in the right power-of-two
	// bucket (interpolated, so exactness is not required — but p50 must be
	// far below p99 and both inside [min, max]).
	h2 := &Histogram{}
	for i := 1; i <= 100; i++ {
		h2.Observe(time.Duration(i) * time.Microsecond)
	}
	p50, p95, p99 := h2.Quantile(0.50), h2.Quantile(0.95), h2.Quantile(0.99)
	if p50 < 1*time.Microsecond || p50 > 100*time.Microsecond {
		t.Fatalf("p50 %v outside [1µs, 100µs]", p50)
	}
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 > 64*time.Microsecond {
		t.Fatalf("p50 %v implausibly high for uniform 1..100µs", p50)
	}
	if p99 < 64*time.Microsecond {
		t.Fatalf("p99 %v implausibly low for uniform 1..100µs", p99)
	}
	if h2.Quantile(0) != 1*time.Microsecond || h2.Quantile(1) != 100*time.Microsecond {
		t.Fatalf("q=0/q=1 not clamped to min/max: %v, %v", h2.Quantile(0), h2.Quantile(1))
	}

	// Snapshot carries the percentiles.
	s := h2.snapshot("h")
	if s.P50US != p50.Microseconds() || s.P95US != p95.Microseconds() || s.P99US != p99.Microseconds() {
		t.Fatalf("snapshot percentiles %d/%d/%d disagree with Quantile %v/%v/%v",
			s.P50US, s.P95US, s.P99US, p50, p95, p99)
	}
}

// simClock is a deterministic test clock.
type simClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *simClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func (c *simClock) read() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func TestEventLogLifecycle(t *testing.T) {
	log := NewEventLog()
	clk := &simClock{}
	log.SetNow(clk.read)

	s := log.Begin("bulk-delete", "orders")
	if s.ID() != 1 {
		t.Fatalf("first statement ID = %d, want 1", s.ID())
	}
	clk.advance(5 * time.Millisecond)
	s.SetPhase("victims")
	s.AddPages(3)
	s.AddRows(2)
	clk.advance(5 * time.Millisecond)
	s.EventWait(EvLock, "exclusive orders", 7*time.Millisecond)
	s.EventDev(EvNodeStart, "IB", 2)

	// In flight: visible with live phase and counters.
	inf := log.InFlight()
	if len(inf) != 1 {
		t.Fatalf("in-flight count = %d, want 1", len(inf))
	}
	st := inf[0]
	if st.Phase != "victims" || st.Pages != 3 || st.Rows != 2 || st.EndUS != -1 {
		t.Fatalf("in-flight status wrong: %+v", st)
	}

	s.End()
	if n := len(log.InFlight()); n != 0 {
		t.Fatalf("in-flight count after End = %d, want 0", n)
	}

	evs := s.Events()
	kinds := make([]EventKind, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	want := []EventKind{EvBegin, EvPhase, EvLock, EvNodeStart, EvEnd}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events %v, want %v", len(kinds), kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %s, want %s", i, kinds[i], want[i])
		}
	}
	// Chronological and seq-ordered; timestamps from the injected clock.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %+v after %+v", evs[i], evs[i-1])
		}
	}
	if evs[0].AtUS != 0 || evs[1].AtUS != 5000 || evs[2].AtUS != 10000 {
		t.Fatalf("timestamps not from injected clock: %d, %d, %d", evs[0].AtUS, evs[1].AtUS, evs[2].AtUS)
	}
	if evs[2].WaitUS != 7000 {
		t.Fatalf("lock wait = %dµs, want 7000", evs[2].WaitUS)
	}
	if evs[3].Device != 2 {
		t.Fatalf("node-start device = %d, want 2", evs[3].Device)
	}
}

func TestNilStmtSafety(t *testing.T) {
	var s *Stmt
	s.Event(EvWAL, "x")
	s.EventDev(EvNodeStart, "x", 1)
	s.EventWait(EvLock, "x", time.Second)
	s.SetPhase("p")
	s.AddPages(1)
	s.AddRows(1)
	s.End()
	if s.ID() != 0 || len(s.Events()) != 0 {
		t.Fatal("nil statement not inert")
	}
	st := s.Status()
	if st.ID != 0 || st.EndUS != -1 {
		t.Fatalf("nil status wrong: %+v", st)
	}
	var log *EventLog
	if log.Begin("k", "t") != nil {
		t.Fatal("nil log Begin not nil")
	}
}

func TestEventLogJSONLAndChromeTrace(t *testing.T) {
	log := NewEventLog()
	clk := &simClock{}
	log.SetNow(clk.read)

	a := log.Begin("bulk-delete", "T0")
	a.SetPhase("victims")
	clk.advance(time.Millisecond)
	b := log.Begin("bulk-update", "T1")
	a.SetPhase("heap-pass")
	a.EventDev(EvNodeStart, "IB", 1)
	clk.advance(time.Millisecond)
	a.EventDev(EvNodeFinish, "IB", 1)
	a.End()
	b.End()

	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	var lastSeq uint64
	for _, ln := range lines {
		var e map[string]any
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		seq := uint64(e["seq"].(float64))
		if seq <= lastSeq {
			t.Fatalf("JSONL out of seq order at %q", ln)
		}
		lastSeq = seq
	}

	j, err := log.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(j, &tr); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var stmtSpans, asyncB, asyncE int
	for _, ev := range tr.TraceEvents {
		switch ev["ph"] {
		case "X":
			stmtSpans++
		case "b":
			asyncB++
		case "e":
			asyncE++
		}
	}
	// Two statement spans plus two phase spans; one async node pair.
	if stmtSpans < 3 {
		t.Fatalf("chrome trace has %d complete spans, want >= 3 (2 statements + phases)", stmtSpans)
	}
	if asyncB != 1 || asyncE != 1 {
		t.Fatalf("chrome trace has %d/%d async begin/end events, want 1/1", asyncB, asyncE)
	}

	// Determinism: rebuilding the same history must produce identical bytes.
	log2 := NewEventLog()
	clk2 := &simClock{}
	log2.SetNow(clk2.read)
	a2 := log2.Begin("bulk-delete", "T0")
	a2.SetPhase("victims")
	clk2.advance(time.Millisecond)
	b2 := log2.Begin("bulk-update", "T1")
	a2.SetPhase("heap-pass")
	a2.EventDev(EvNodeStart, "IB", 1)
	clk2.advance(time.Millisecond)
	a2.EventDev(EvNodeFinish, "IB", 1)
	a2.End()
	b2.End()
	j2, err := log2.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j, j2) {
		t.Fatal("identical event histories produced different Chrome traces")
	}
}

func TestEventLogDoneRing(t *testing.T) {
	log := NewEventLog()
	for i := 0; i < maxKeptStatements+10; i++ {
		log.Begin("k", "t").End()
	}
	done := log.Statements()
	if len(done) != maxKeptStatements {
		t.Fatalf("done ring holds %d statements, want %d", len(done), maxKeptStatements)
	}
	// The ring keeps the newest.
	if done[len(done)-1].ID() != uint64(maxKeptStatements+10) {
		t.Fatalf("newest kept ID = %d, want %d", done[len(done)-1].ID(), maxKeptStatements+10)
	}
}
