// Package obs is the engine's observability layer: a metrics registry
// (counters, gauges, simulated-clock histograms), snapshot/diff arithmetic
// over the engine's physical counters, and a span tracer keyed to the
// simulated clock.
//
// The paper's entire argument is quantitative — the vertical ⋈̸ operator
// wins because it converts random per-record I/O into sequential leaf
// passes — so the engine needs to *attribute* I/O, cache behaviour, and WAL
// volume to individual plan phases, not just report global totals. obs does
// that without touching the hot paths: the simulated disk, the buffer pool,
// and the WAL already keep cheap global counters; obs snapshots them around
// arbitrary scopes and diffs the snapshots. Because every engine pass runs
// single-threaded within one statement, the diff of one span is exactly the
// work that span caused (concurrent updaters sharing the disk blur the
// attribution, which is inherent to counter-diffing and documented on
// Span.IO).
//
// Everything here is safe for concurrent use; the concurrent example
// exercises the registry and observer from multiple goroutines.
package obs

import (
	"fmt"
	"time"

	"bulkdel/internal/buffer"
	"bulkdel/internal/sim"
)

// Source names the counter providers a Snapshot reads. Any field may be
// nil/zero; the corresponding counters then stay zero.
type Source struct {
	Disk *sim.Disk
	Pool *buffer.Pool
	// WALBytes returns the bytes durably appended to the write-ahead log
	// (nil when logging is off).
	WALBytes func() uint64
}

// Capture reads every counter at one instant.
func (s Source) Capture() Snapshot {
	var snap Snapshot
	if s.Disk != nil {
		snap.Clock = s.Disk.Clock()
		snap.Disk = s.Disk.Stats()
	}
	if s.Pool != nil {
		snap.Pool = s.Pool.Stats()
	}
	if s.WALBytes != nil {
		snap.WALBytes = s.WALBytes()
	}
	return snap
}

// Snapshot is a point-in-time capture of the engine's physical counters:
// the simulated clock, the disk operation counts, the buffer-pool counters,
// and the WAL volume.
type Snapshot struct {
	Clock    time.Duration
	Disk     sim.Stats
	Pool     buffer.Stats
	WALBytes uint64
}

// Sub returns the work done between the earlier snapshot b and s.
// Differences are saturating: a counter reset between the snapshots yields
// zero, not a wrapped huge value.
func (s Snapshot) Sub(b Snapshot) Delta {
	return Delta{
		Elapsed:     maxDur(s.Clock-b.Clock, 0),
		Reads:       satSub(s.Disk.Reads, b.Disk.Reads),
		Writes:      satSub(s.Disk.Writes, b.Disk.Writes),
		Seeks:       satSub(s.Disk.RandomOps, b.Disk.RandomOps),
		NearOps:     satSub(s.Disk.NearOps, b.Disk.NearOps),
		SeqOps:      satSub(s.Disk.SeqOps, b.Disk.SeqOps),
		ChainedRuns: satSub(s.Disk.ChainedRuns, b.Disk.ChainedRuns),
		Allocated:   satSub(s.Disk.Allocated, b.Disk.Allocated),
		Compares:    satSub(s.Disk.Compares, b.Disk.Compares),
		Records:     satSub(s.Disk.Records, b.Disk.Records),
		Hits:        satSub(s.Pool.Hits, b.Pool.Hits),
		Misses:      satSub(s.Pool.Misses, b.Pool.Misses),
		Evictions:   satSub(s.Pool.Evictions, b.Pool.Evictions),
		DirtyEvicts: satSub(s.Pool.DirtyEvicts, b.Pool.DirtyEvicts),
		WALBytes:    satSub(s.WALBytes, b.WALBytes),
		Faults:      satSub(s.Disk.FaultsInjected, b.Disk.FaultsInjected),
	}
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func maxDur(a, b time.Duration) time.Duration {
	if a < b {
		return b
	}
	return a
}

// Delta is the work done between two snapshots, attributable to whatever
// ran in between.
type Delta struct {
	Elapsed     time.Duration // simulated time
	Reads       uint64        // pages read
	Writes      uint64        // pages written
	Seeks       uint64        // operations that paid the full positioning charge
	NearOps     uint64        // same-cylinder short jumps
	SeqOps      uint64        // successor accesses (transfer only)
	ChainedRuns uint64        // multi-page chained I/Os issued
	Allocated   uint64        // pages allocated
	Compares    uint64        // key comparisons charged
	Records     uint64        // per-record CPU charges
	Hits        uint64        // buffer-pool hits
	Misses      uint64        // buffer-pool misses
	Evictions   uint64        // frames evicted
	DirtyEvicts uint64        // evictions that wrote back
	WALBytes    uint64        // log bytes made durable
	Faults      uint64        // injected I/O faults tripped (crash tests)
}

// Add accumulates another delta into d.
func (d *Delta) Add(o Delta) {
	d.Elapsed += o.Elapsed
	d.Reads += o.Reads
	d.Writes += o.Writes
	d.Seeks += o.Seeks
	d.NearOps += o.NearOps
	d.SeqOps += o.SeqOps
	d.ChainedRuns += o.ChainedRuns
	d.Allocated += o.Allocated
	d.Compares += o.Compares
	d.Records += o.Records
	d.Hits += o.Hits
	d.Misses += o.Misses
	d.Evictions += o.Evictions
	d.DirtyEvicts += o.DirtyEvicts
	d.WALBytes += o.WALBytes
	d.Faults += o.Faults
}

// HitRatio returns the buffer-pool hit ratio in [0,1], or -1 when the span
// touched the pool not at all.
func (d Delta) HitRatio() float64 {
	total := d.Hits + d.Misses
	if total == 0 {
		return -1
	}
	return float64(d.Hits) / float64(total)
}

// String renders the delta compactly for explain output.
func (d Delta) String() string {
	s := fmt.Sprintf("time=%v reads=%d writes=%d seeks=%d", d.Elapsed, d.Reads, d.Writes, d.Seeks)
	if hr := d.HitRatio(); hr >= 0 {
		s += fmt.Sprintf(" hit=%.1f%%", hr*100)
	}
	if d.WALBytes > 0 {
		s += fmt.Sprintf(" wal=%s", FmtBytes(d.WALBytes))
	}
	return s
}

// FmtBytes renders a byte count with a binary unit.
func FmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
