package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named-metric store: monotonically increasing counters,
// set-to-value gauges, and simulated-clock duration histograms. Metrics are
// created on first use and live for the registry's lifetime. All methods
// are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter (negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a set-to-value integer metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the value by n (which may be negative); it returns the new
// value so callers tracking high-water marks can read it atomically.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// SetMax raises the gauge to n if n is greater than the current value,
// atomically — high-water marks updated from concurrent statements must not
// lose a peak to a read-then-set race.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the last set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts observations d with d < 1µs·2^i; the last bucket is +Inf.
const histBuckets = 40

// Histogram accumulates simulated-clock durations in power-of-two
// microsecond buckets plus count/sum/min/max.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [histBuckets]uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	us := d.Microseconds()
	i := 0
	for i < histBuckets-1 && us >= int64(1)<<i {
		i++
	}
	h.buckets[i]++
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded
// durations by linear interpolation inside the power-of-two bucket
// holding the target rank, clamped to the recorded [min, max]. An empty
// histogram reports zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			if i == histBuckets-1 {
				return h.max // open-ended bucket: max is the best bound
			}
			// Bucket i holds durations in [2^(i-1), 2^i) µs; bucket 0 is
			// the sub-microsecond bucket [0, 1).
			lo, hi := int64(0), int64(1)
			if i > 0 {
				lo = int64(1) << (i - 1)
				hi = int64(1) << i
			}
			frac := (rank - cum) / float64(c)
			d := time.Duration((float64(lo) + frac*float64(hi-lo)) * float64(time.Microsecond))
			if d < h.min {
				d = h.min
			}
			if d > h.max {
				d = h.max
			}
			return d
		}
		cum = next
	}
	return h.max
}

// HistogramSnapshot is the JSON-stable view of one histogram.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	SumUS   int64         `json:"sum_us"`
	MinUS   int64         `json:"min_us"`
	MaxUS   int64         `json:"max_us"`
	P50US   int64         `json:"p50_us"`
	P95US   int64         `json:"p95_us"`
	P99US   int64         `json:"p99_us"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: Count observations below
// LeUS microseconds (LeUS = -1 marks the +Inf bucket).
type BucketCount struct {
	LeUS  int64  `json:"le_us"`
	Count uint64 `json:"count"`
}

func (h *Histogram) snapshot(name string) HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Name:  name,
		Count: h.count,
		SumUS: h.sum.Microseconds(),
		MinUS: h.min.Microseconds(),
		MaxUS: h.max.Microseconds(),
		P50US: h.quantileLocked(0.50).Microseconds(),
		P95US: h.quantileLocked(0.95).Microseconds(),
		P99US: h.quantileLocked(0.99).Microseconds(),
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		le := int64(1) << i
		if i == histBuckets-1 {
			le = -1
		}
		s.Buckets = append(s.Buckets, BucketCount{LeUS: le, Count: c})
	}
	return s
}

// NamedValue pairs a metric name with its current value.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// RegistrySnapshot is a stable (name-sorted) view of every metric.
type RegistrySnapshot struct {
	Counters   []NamedValue        `json:"counters"`
	Gauges     []NamedValue        `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric, sorted by name so the encoding is stable.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s RegistrySnapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// JSON encodes the snapshot; key order is fixed, so identical state always
// produces identical bytes.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
