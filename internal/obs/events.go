// Statement-lifecycle event log. Every statement the DB admits gets an ID
// and an ordered stream of structured events — admitted, lock waits/grants
// with holder identity, gate transitions, §3.1 early release, executor
// phases, DAG node start/finish with device, WAL record appends, commit,
// release-all — buffered lock-free per statement (CAS-push list, global
// sequence numbers) so hot paths never contend on the log.
//
// Timestamps come from the simulated disk clock (SetNow), so for a serial
// uncontended run the whole event stream is deterministic and golden-
// testable; real-time wait durations (lock/admission blocking) travel in a
// separate WaitUS field that is zero in that scenario. The log exports as
// JSONL (one event per line, seq-ordered) and as Chrome trace_event JSON
// so a whole RunConcurrent batch renders as a timeline in chrome://tracing
// (one thread row per statement; parallel DAG nodes as async spans).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies one lifecycle event.
type EventKind string

// The statement lifecycle, in the order a bulk delete emits it.
const (
	EvBegin        EventKind = "begin"         // statement admitted, ID assigned
	EvLock         EventKind = "lock"          // table lock granted (wait_us > 0 when it blocked)
	EvGateOffline  EventKind = "gate-offline"  // index gate taken offline (§3.1)
	EvGateOnline   EventKind = "gate-online"   // gate back online, side-file drained
	EvEarlyRelease EventKind = "early-release" // exclusive lock dropped after the critical set
	EvPhase        EventKind = "phase"         // executor phase change
	EvNodeStart    EventKind = "node-start"    // DAG node dispatched to a device
	EvNodeFinish   EventKind = "node-finish"   // DAG node done
	EvWAL          EventKind = "wal"           // WAL lifecycle record appended
	EvCommit       EventKind = "commit"        // commit record flushed
	EvEnd          EventKind = "end"           // release-all, statement finished

	// Cancellation lifecycle (emitted only by cancelled/retried/shed
	// statements, so existing streams are unchanged).
	EvCancel EventKind = "cancel" // cancellation observed at a recoverable boundary
	EvAbort  EventKind = "abort"  // abort-to-consistency replay finished
	EvRetry  EventKind = "retry"  // statement re-admitted by the retry policy
	EvShed   EventKind = "shed"   // admission overload guard rejected the statement
)

// Event is one entry of a statement's lifecycle stream. Seq is a global
// (per-EventLog) sequence number giving a total order across statements;
// AtUS is the simulated clock. WaitUS is real blocking time and therefore
// the only nondeterministic field — it is zero whenever nothing blocked.
type Event struct {
	Seq    uint64
	Stmt   uint64
	AtUS   int64
	Kind   EventKind
	Detail string
	Device int // device a node ran on; -1 when not device-bound
	WaitUS int64
}

type eventNode struct {
	ev   Event
	next *eventNode
}

// Stmt is one statement's handle into the event log. All methods are
// nil-safe so the engine can thread an optional *Stmt through without
// guarding call sites, and event pushes are lock-free.
type Stmt struct {
	log     *EventLog
	id      uint64
	kind    string
	table   string
	startUS int64

	head  atomic.Pointer[eventNode]
	phase atomic.Pointer[string]
	pages atomic.Int64
	rows  atomic.Int64
	endUS atomic.Int64 // -1 while in flight
}

// ID returns the statement's log-assigned ID (0 for a nil statement).
func (s *Stmt) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

func (s *Stmt) push(kind EventKind, detail string, device int, wait time.Duration) {
	if s == nil || s.log == nil {
		return
	}
	n := &eventNode{ev: Event{
		Seq:    s.log.seq.Add(1),
		Stmt:   s.id,
		AtUS:   s.log.nowUS(),
		Kind:   kind,
		Detail: detail,
		Device: device,
		WaitUS: wait.Microseconds(),
	}}
	for {
		old := s.head.Load()
		n.next = old
		if s.head.CompareAndSwap(old, n) {
			return
		}
	}
}

// Event appends a plain lifecycle event.
func (s *Stmt) Event(kind EventKind, detail string) { s.push(kind, detail, -1, 0) }

// EventDev appends a device-bound event (DAG node start/finish).
func (s *Stmt) EventDev(kind EventKind, detail string, device int) {
	s.push(kind, detail, device, 0)
}

// EventWait appends an event carrying real blocked time (lock waits).
func (s *Stmt) EventWait(kind EventKind, detail string, waited time.Duration) {
	s.push(kind, detail, -1, waited)
}

// SetPhase publishes the executor phase (live progress) and records the
// transition as an event.
func (s *Stmt) SetPhase(phase string) {
	if s == nil {
		return
	}
	p := phase
	s.phase.Store(&p)
	s.push(EvPhase, phase, -1, 0)
}

// AddPages bumps the pages-scanned progress counter (no event: this is the
// per-page hot path).
func (s *Stmt) AddPages(n int64) {
	if s != nil {
		s.pages.Add(n)
	}
}

// AddRows bumps the victims-deleted progress counter.
func (s *Stmt) AddRows(n int64) {
	if s != nil {
		s.rows.Add(n)
	}
}

// Events returns the statement's events in chronological (seq) order.
func (s *Stmt) Events() []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for n := s.head.Load(); n != nil; n = n.next {
		out = append(out, n.ev)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// StmtStatus is a point-in-time snapshot of one statement's progress.
type StmtStatus struct {
	ID      uint64 `json:"id"`
	Kind    string `json:"kind"`
	Table   string `json:"table"`
	Phase   string `json:"phase,omitempty"`
	Pages   int64  `json:"pages"`
	Rows    int64  `json:"rows"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"` // -1 while in flight
	Events  int    `json:"events"`
}

// Status snapshots the statement (zero value for nil).
func (s *Stmt) Status() StmtStatus {
	if s == nil {
		return StmtStatus{EndUS: -1}
	}
	st := StmtStatus{
		ID:      s.id,
		Kind:    s.kind,
		Table:   s.table,
		Pages:   s.pages.Load(),
		Rows:    s.rows.Load(),
		StartUS: s.startUS,
		EndUS:   s.endUS.Load(),
		Events:  len(s.Events()),
	}
	if p := s.phase.Load(); p != nil {
		st.Phase = *p
	}
	return st
}

// maxKeptStatements bounds the log's finished-statement retention.
const maxKeptStatements = 256

// EventLog owns statement IDs, the global event sequence, and the set of
// in-flight and recently finished statements. The DB wires SetNow to the
// simulated disk clock at open.
type EventLog struct {
	seq atomic.Uint64
	ids atomic.Uint64
	now atomic.Pointer[func() time.Duration]

	mu       sync.Mutex
	inflight map[uint64]*Stmt
	done     []*Stmt
}

// NewEventLog returns an empty log (timestamps read 0 until SetNow).
func NewEventLog() *EventLog {
	return &EventLog{inflight: make(map[uint64]*Stmt)}
}

// SetNow installs the clock used to stamp events — the simulated disk
// clock, so event times line up with span traces and are deterministic.
func (l *EventLog) SetNow(now func() time.Duration) {
	if l != nil && now != nil {
		l.now.Store(&now)
	}
}

func (l *EventLog) nowUS() int64 {
	if l == nil {
		return 0
	}
	if f := l.now.Load(); f != nil {
		return (*f)().Microseconds()
	}
	return 0
}

// Begin registers a new statement and emits its admitted event.
func (l *EventLog) Begin(kind, table string) *Stmt {
	if l == nil {
		return nil
	}
	s := &Stmt{log: l, id: l.ids.Add(1), kind: kind, table: table, startUS: l.nowUS()}
	s.endUS.Store(-1)
	l.mu.Lock()
	l.inflight[s.id] = s
	l.mu.Unlock()
	s.push(EvBegin, kind+" table="+table, -1, 0)
	return s
}

// End emits the release-all event and retires the statement into the
// bounded done ring.
func (s *Stmt) End() {
	if s == nil || s.log == nil {
		return
	}
	s.push(EvEnd, "", -1, 0)
	s.endUS.Store(s.log.nowUS())
	l := s.log
	l.mu.Lock()
	delete(l.inflight, s.id)
	l.done = append(l.done, s)
	if len(l.done) > maxKeptStatements {
		l.done = l.done[len(l.done)-maxKeptStatements:]
	}
	l.mu.Unlock()
}

// Get returns the in-flight statement with the given ID, or nil — how the
// lock manager's OnLock hook routes events to their owner.
func (l *EventLog) Get(id uint64) *Stmt {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight[id]
}

// InFlight snapshots every running statement, ID-ordered.
func (l *EventLog) InFlight() []StmtStatus {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	stmts := make([]*Stmt, 0, len(l.inflight))
	for _, s := range l.inflight {
		stmts = append(stmts, s)
	}
	l.mu.Unlock()
	sort.Slice(stmts, func(i, j int) bool { return stmts[i].id < stmts[j].id })
	out := make([]StmtStatus, len(stmts))
	for i, s := range stmts {
		out[i] = s.Status()
	}
	return out
}

// Statements returns finished then in-flight statements, ID-ordered.
func (l *EventLog) Statements() []*Stmt {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]*Stmt, 0, len(l.done)+len(l.inflight))
	out = append(out, l.done...)
	for _, s := range l.inflight {
		out = append(out, s)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Events returns every retained event across all statements in global
// sequence order.
func (l *EventLog) Events() []Event {
	var out []Event
	for _, s := range l.Statements() {
		out = append(out, s.Events()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// eventJSON is the stable JSONL wire form of one event.
type eventJSON struct {
	Seq    uint64    `json:"seq"`
	Stmt   uint64    `json:"stmt"`
	AtUS   int64     `json:"at_us"`
	Kind   EventKind `json:"kind"`
	Detail string    `json:"detail,omitempty"`
	Device *int      `json:"device,omitempty"`
	WaitUS int64     `json:"wait_us,omitempty"`
}

func (e Event) wire() eventJSON {
	w := eventJSON{
		Seq:    e.Seq,
		Stmt:   e.Stmt,
		AtUS:   e.AtUS,
		Kind:   e.Kind,
		Detail: e.Detail,
		WaitUS: e.WaitUS,
	}
	if e.Device >= 0 {
		dev := e.Device
		w.Device = &dev
	}
	return w
}

// WriteJSONL writes the whole log as JSON Lines, one event per line in
// global sequence order.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	for _, ev := range l.Events() {
		b, err := json.Marshal(ev.wire())
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of a Chrome trace_event JSON array. Args is a
// map, but encoding/json sorts map keys, so output stays deterministic.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	ID   string            `json:"id,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace accumulates trace_event entries for chrome://tracing (or
// Perfetto). Build one from an EventLog, span Traces, or both, then JSON().
type ChromeTrace struct {
	events []chromeEvent
}

func (c *ChromeTrace) add(ev chromeEvent) { c.events = append(c.events, ev) }

// SetProcessName emits the process_name metadata record for a pid.
func (c *ChromeTrace) SetProcessName(pid int, name string) {
	c.add(chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]string{"name": name}})
}

// SetThreadName emits the thread_name metadata record for a tid.
func (c *ChromeTrace) SetThreadName(pid, tid int, name string) {
	c.add(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]string{"name": name}})
}

// AddSpanTree renders a statement span trace (obs.Trace) as nested
// complete events on one thread row — the bench tools use this to export
// their experiment traces.
func (c *ChromeTrace) AddSpanTree(pid, tid int, t *Trace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c.addSpan(pid, tid, t.root)
}

func (c *ChromeTrace) addSpan(pid, tid int, s *Span) {
	name := s.Name
	if s.Detail != "" {
		name += " " + s.Detail
	}
	c.add(chromeEvent{
		Name: name, Cat: "span", Ph: "X",
		TS: s.Start.Microseconds(), Dur: (s.End - s.Start).Microseconds(),
		Pid: pid, Tid: tid,
	})
	for _, ch := range s.Children {
		c.addSpan(pid, tid, ch)
	}
}

// JSON encodes the accumulated events as a Chrome trace_event document.
func (c *ChromeTrace) JSON() ([]byte, error) {
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: c.events, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	return json.MarshalIndent(doc, "", " ")
}

// statementPid is the pid all statement rows share in Chrome exports.
const statementPid = 1

// ChromeTraceJSON renders the whole log as a Chrome trace_event document:
// one thread row per statement carrying its lifetime span, phase sub-spans,
// and instant markers; parallel DAG nodes become async spans so their
// overlapping simulated-time intervals don't fight for nesting.
func (l *EventLog) ChromeTraceJSON() ([]byte, error) {
	ct := &ChromeTrace{}
	ct.SetProcessName(statementPid, "bulkdel statements")
	for _, s := range l.Statements() {
		tid := int(s.id)
		ct.SetThreadName(statementPid, tid, fmt.Sprintf("stmt %d %s %s", s.id, s.kind, s.table))
		end := s.endUS.Load()
		if end < 0 {
			end = l.nowUS()
		}
		ct.add(chromeEvent{
			Name: s.kind + " " + s.table, Cat: "statement", Ph: "X",
			TS: s.startUS, Dur: end - s.startUS, Pid: statementPid, Tid: tid,
			Args: map[string]string{
				"stmt":  fmt.Sprint(s.id),
				"pages": fmt.Sprint(s.pages.Load()),
				"rows":  fmt.Sprint(s.rows.Load()),
			},
		})
		type nodeOpen struct {
			ts  int64
			seq uint64
			dev int
		}
		open := make(map[string][]nodeOpen)
		var phName string
		var phStart int64
		for _, ev := range s.Events() {
			switch ev.Kind {
			case EvBegin, EvEnd:
				// Covered by the statement's lifetime span.
			case EvPhase:
				if phName != "" {
					ct.add(chromeEvent{
						Name: phName, Cat: "phase", Ph: "X",
						TS: phStart, Dur: ev.AtUS - phStart, Pid: statementPid, Tid: tid,
					})
				}
				phName, phStart = ev.Detail, ev.AtUS
			case EvNodeStart:
				open[ev.Detail] = append(open[ev.Detail], nodeOpen{ts: ev.AtUS, seq: ev.Seq, dev: ev.Device})
			case EvNodeFinish:
				if q := open[ev.Detail]; len(q) > 0 {
					n := q[len(q)-1]
					open[ev.Detail] = q[:len(q)-1]
					id := fmt.Sprintf("n%d", n.seq)
					args := map[string]string{"device": fmt.Sprint(n.dev)}
					ct.add(chromeEvent{Name: ev.Detail, Cat: "node", Ph: "b",
						TS: n.ts, Pid: statementPid, Tid: tid, ID: id, Args: args})
					ct.add(chromeEvent{Name: ev.Detail, Cat: "node", Ph: "e",
						TS: ev.AtUS, Pid: statementPid, Tid: tid, ID: id})
				}
			default:
				name := string(ev.Kind)
				if ev.Detail != "" {
					name += " " + ev.Detail
				}
				ie := chromeEvent{Name: name, Cat: string(ev.Kind), Ph: "i",
					TS: ev.AtUS, Pid: statementPid, Tid: tid, S: "t"}
				if ev.WaitUS > 0 {
					ie.Args = map[string]string{"wait_us": fmt.Sprint(ev.WaitUS)}
				}
				ct.add(ie)
			}
		}
		if phName != "" {
			ct.add(chromeEvent{
				Name: phName, Cat: "phase", Ph: "X",
				TS: phStart, Dur: end - phStart, Pid: statementPid, Tid: tid,
			})
		}
	}
	return ct.JSON()
}
