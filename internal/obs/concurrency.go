package obs

// Canonical metric names for the DB-level concurrency layer. The values
// live in the ordinary Registry; the constants exist so the DB, the tests,
// and the CLIs agree on spelling.
const (
	// MetricLockWaits counts lock-manager acquisitions that had to block.
	MetricLockWaits = "cc_lock_waits"
	// MetricLockWaitUS accumulates the blocked time of those acquisitions
	// in microseconds of *real* time — goroutines block on the wall clock,
	// not the simulated disk clock, so this counter is not deterministic.
	MetricLockWaitUS = "cc_lock_wait_us"
	// MetricStatementsActive gauges the number of statements currently
	// inside the lock manager (holding at least one table lock).
	MetricStatementsActive = "cc_statements_active"
	// MetricStatementsPeak gauges the high-water mark of concurrently
	// active statements since open.
	MetricStatementsPeak = "cc_statements_peak"
	// MetricConcurrentBatches counts DB.RunConcurrent invocations.
	MetricConcurrentBatches = "cc_concurrent_batches"
	// MetricAborts counts statements cancelled mid-flight and brought to
	// consistency via the online roll-forward replay.
	MetricAborts = "cc_aborts"
	// MetricRetries counts statement re-executions performed by the
	// RunConcurrent retry policy after a timeout/deadlock abort.
	MetricRetries = "cc_retries"
	// MetricDeadlineExceeded counts statements that hit their deadline (a
	// subset of the aborts counted by MetricAborts).
	MetricDeadlineExceeded = "cc_deadline_exceeded"
	// MetricAdmissionShed counts statements rejected by the admission
	// pool's overload guard instead of being queued.
	MetricAdmissionShed = "adm_shed"
)

// Canonical metric names for MVCC snapshot reads. Snapshot readers never
// block behind a bulk delete's exclusive lock, so on a healthy engine the
// wait counter stays at zero — the reads-during-delete smoke test asserts
// exactly that.
const (
	// MetricSnapshotReads counts read statements served from an MVCC
	// snapshot (Get/Lookup/LookupRange/Scan with snapshot reads enabled).
	MetricSnapshotReads = "mvcc_snapshot_reads"
	// MetricSnapshotReadWaits counts snapshot reads that had to block for
	// a Structural claim (repartition, rebalance, offline baselines) —
	// never for an ordinary bulk delete.
	MetricSnapshotReadWaits = "mvcc_snapshot_read_waits"
	// MetricSnapshotFallbackScans counts indexed snapshot lookups that fell
	// back to the visibility-filtered heap scan because a bulk delete held
	// the table's index trees offline.
	MetricSnapshotFallbackScans = "mvcc_snapshot_fallback_scans"
	// MetricVersionsRetained counts pre-delete row images copied into the
	// version store for the benefit of open snapshots.
	MetricVersionsRetained = "mvcc_versions_retained"
	// MetricVersionsRetainedBytes gauges the bytes currently held by
	// retained versions across all tables — the version store's live memory
	// footprint. Pruning behind the snapshot horizon drives it back to zero.
	MetricVersionsRetainedBytes = "mvcc_retained_bytes"
)

// Canonical metric names for the WAL appender queue — the measurement
// substrate for group commit. Append wait is *real* mutex-block time (the
// appender serializes concurrent statements), so like the lock-wait
// counters it is not deterministic; byte/page counters are.
const (
	// MetricWALAppends counts records accepted by the appender.
	MetricWALAppends = "wal_appends"
	// MetricWALAppendWaitUS accumulates real time spent blocked on the
	// appender mutex, in microseconds.
	MetricWALAppendWaitUS = "wal_append_wait_us"
	// MetricWALFlushes counts Flush calls that wrote pages.
	MetricWALFlushes = "wal_flushes"
	// MetricWALFlushPages counts whole log pages written by flushes.
	MetricWALFlushPages = "wal_flush_pages"
	// MetricWALFlushBytes accumulates record bytes made durable.
	MetricWALFlushBytes = "wal_flush_bytes"
	// MetricWALQueueDepth gauges the bytes buffered but not yet flushed.
	MetricWALQueueDepth = "wal_queue_depth"
	// MetricWALQueuePeak gauges the high-water mark of the append queue.
	MetricWALQueuePeak = "wal_queue_peak"
)

// HistWALAppendWait is the registry histogram of per-append real blocked
// time on the appender mutex (append latency distribution).
const HistWALAppendWait = "wal_append_wait"

// HistTableWaitPrefix prefixes the per-table lock wait-time histograms fed
// by the lock manager's OnWait hook ("cc_table_wait:" + table).
const HistTableWaitPrefix = "cc_table_wait:"
