package obs

// Canonical metric names for the DB-level concurrency layer. The values
// live in the ordinary Registry; the constants exist so the DB, the tests,
// and the CLIs agree on spelling.
const (
	// MetricLockWaits counts lock-manager acquisitions that had to block.
	MetricLockWaits = "cc_lock_waits"
	// MetricLockWaitUS accumulates the blocked time of those acquisitions
	// in microseconds of *real* time — goroutines block on the wall clock,
	// not the simulated disk clock, so this counter is not deterministic.
	MetricLockWaitUS = "cc_lock_wait_us"
	// MetricStatementsActive gauges the number of statements currently
	// inside the lock manager (holding at least one table lock).
	MetricStatementsActive = "cc_statements_active"
	// MetricStatementsPeak gauges the high-water mark of concurrently
	// active statements since open.
	MetricStatementsPeak = "cc_statements_peak"
	// MetricConcurrentBatches counts DB.RunConcurrent invocations.
	MetricConcurrentBatches = "cc_concurrent_batches"
)
