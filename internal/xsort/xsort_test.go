package xsort

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"bulkdel/internal/sim"
)

func testDisk() *sim.Disk {
	return sim.NewDisk(sim.CostModel{
		Seek:         8 * time.Millisecond,
		Rotation:     4 * time.Millisecond,
		TransferPage: 1 * time.Millisecond,
	})
}

func row8(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func drain(t *testing.T, it *Iterator) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, append([]byte(nil), r...))
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInMemorySort(t *testing.T) {
	d := testDisk()
	s, err := New(d, 8, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := []uint64{5, 3, 9, 1, 7, 3, 0}
	for _, v := range vals {
		if err := s.Add(row8(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spilled() {
		t.Fatal("small input should not spill")
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if len(out) != len(vals) {
		t.Fatalf("got %d rows", len(out))
	}
	want := append([]uint64(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, r := range out {
		if binary.BigEndian.Uint64(r) != want[i] {
			t.Fatalf("row %d = %d, want %d", i, binary.BigEndian.Uint64(r), want[i])
		}
	}
	// No disk I/O for an in-memory sort.
	if st := d.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("in-memory sort did I/O: %+v", st)
	}
	if s.RowsAdded() != int64(len(vals)) {
		t.Fatalf("RowsAdded = %d", s.RowsAdded())
	}
}

func TestSpillingSort(t *testing.T) {
	d := testDisk()
	// Budget for ~2000 rows; feed 50000 so it spills into many runs.
	s, err := New(d, 8, 16000, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	n := 50000
	want := make([]uint64, n)
	for i := range want {
		want[i] = rng.Uint64()
		if err := s.Add(row8(want[i])); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Spilled() {
		t.Fatal("input over budget should spill")
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	i := 0
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got := binary.BigEndian.Uint64(r); got != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got, want[i])
		}
		i++
	}
	if i != n {
		t.Fatalf("iterated %d rows, want %d", i, n)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Reads == 0 || st.Writes == 0 {
		t.Fatal("spilling sort should do I/O")
	}
}

func TestMultiPassMerge(t *testing.T) {
	d := testDisk()
	// Tiny budget: maxRows clamps to 16 per run; fan-in 2, so a few
	// thousand rows force several merge passes.
	s, err := New(d, 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := 3000
	want := make([]uint64, n)
	for i := range want {
		want[i] = uint64(rng.Intn(1000))
		if err := s.Add(row8(want[i])); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(out) != n {
		t.Fatalf("got %d rows", len(out))
	}
	for i := range out {
		if binary.BigEndian.Uint64(out[i]) != want[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestCustomComparator(t *testing.T) {
	d := testDisk()
	// Sort descending via inverted comparator.
	s, err := New(d, 8, 1<<20, func(a, b []byte) int { return bytes.Compare(b, a) })
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{1, 5, 3} {
		if err := s.Add(row8(v)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	got := []uint64{
		binary.BigEndian.Uint64(out[0]),
		binary.BigEndian.Uint64(out[1]),
		binary.BigEndian.Uint64(out[2]),
	}
	if got[0] != 5 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("descending sort = %v", got)
	}
}

func TestErrors(t *testing.T) {
	d := testDisk()
	if _, err := New(d, 0, 100, nil); err == nil {
		t.Fatal("row size 0 should fail")
	}
	if _, err := New(d, sim.PageSize+1, 100, nil); err == nil {
		t.Fatal("row size > page should fail")
	}
	s, err := New(d, 8, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(make([]byte, 4)); err == nil {
		t.Fatal("wrong row size should fail")
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(row8(1)); err == nil {
		t.Fatal("Add after Finish should fail")
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("double Finish should fail")
	}
}

func TestEmptyInput(t *testing.T) {
	d := testDisk()
	s, err := New(d, 16, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if out := drain(t, it); len(out) != 0 {
		t.Fatalf("empty sort produced %d rows", len(out))
	}
}

// TestQuickAgainstSortSlice verifies the external sort against the stdlib
// across random row sizes, budgets, and contents.
func TestQuickAgainstSortSlice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rowSize := 4 + rng.Intn(60)
		budget := rng.Intn(8000) // often forces spills
		n := rng.Intn(4000)
		d := testDisk()
		s, err := New(d, rowSize, budget, nil)
		if err != nil {
			t.Log(err)
			return false
		}
		rows := make([][]byte, n)
		for i := range rows {
			rows[i] = make([]byte, rowSize)
			rng.Read(rows[i])
			if err := s.Add(rows[i]); err != nil {
				t.Log(err)
				return false
			}
		}
		it, err := s.Finish()
		if err != nil {
			t.Log(err)
			return false
		}
		sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i], rows[j]) < 0 })
		i := 0
		for {
			r, ok, err := it.Next()
			if err != nil {
				t.Log(err)
				return false
			}
			if !ok {
				break
			}
			if i >= n || !bytes.Equal(r, rows[i]) {
				t.Logf("mismatch at row %d (n=%d rowSize=%d budget=%d)", i, n, rowSize, budget)
				return false
			}
			i++
		}
		if err := it.Close(); err != nil {
			t.Log(err)
			return false
		}
		return i == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSpillIOIsChained(t *testing.T) {
	d := testDisk()
	s, err := New(d, 8, 32000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if err := s.Add(row8(uint64(i * 2147483647))); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	// Chained I/O: page transfers should dominate positioning charges.
	if st.RandomOps*3 > st.Reads+st.Writes {
		t.Fatalf("sort I/O not chained: %d positioning for %d transfers",
			st.RandomOps, st.Reads+st.Writes)
	}
}

func TestAllEqualRows(t *testing.T) {
	d := testDisk()
	s, err := New(d, 8, 1000, nil) // tiny budget: spills and merges
	if err != nil {
		t.Fatal(err)
	}
	n := 5000
	for i := 0; i < n; i++ {
		if err := s.Add(row8(42)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if binary.BigEndian.Uint64(r) != 42 {
			t.Fatal("wrong value among equal rows")
		}
		count++
	}
	if count != n {
		t.Fatalf("equal-key merge lost rows: %d of %d", count, n)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}
