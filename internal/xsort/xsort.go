// Package xsort implements k-way external merge sort for fixed-width rows
// under a byte budget.
//
// The sort/merge bulk-delete plans of the paper (§2.2.1, Figure 3) sort the
// victim lists — keys extracted from table D, RIDs produced by the first
// bulk-delete operator, ⟨B,RID⟩ / ⟨C,RID⟩ pairs for the secondary indexes —
// so that each subsequent bulk delete visits its table or index in physical
// order. The paper stresses that "only the (small) lists of keys and RIDs
// need to be sorted", and that with enough memory the sort is a single
// in-memory pass; when the victim list outgrows the budget, runs are
// spilled to disk and merged, exactly like a classic sort/merge join build.
//
// Rows are opaque fixed-width byte strings compared with a caller-supplied
// comparator (usually bytes.Compare over an order-preserving encoding).
// Spilled runs live in a temporary file on the simulated disk so that the
// I/O they cause is priced into the experiment clock.
package xsort

import (
	"bytes"
	"fmt"
	"sort"

	"bulkdel/internal/sim"
)

// Sorter accumulates rows and produces them in sorted order.
type Sorter struct {
	disk    *sim.Disk
	rowSize int
	budget  int // bytes of working memory
	compare func(a, b []byte) int

	maxRows int // rows held in memory before spilling
	buf     [][]byte
	runs    []runInfo
	file    sim.FileID
	haveTmp bool
	nextPg  sim.PageNo
	rowsIn  int64
	done    bool
}

type runInfo struct {
	start sim.PageNo
	pages int
	rows  int64
}

// New creates a sorter for rows of rowSize bytes under a memory budget of
// budgetBytes. compare orders two rows; bytes.Compare is the common choice.
func New(disk *sim.Disk, rowSize, budgetBytes int, compare func(a, b []byte) int) (*Sorter, error) {
	if rowSize <= 0 || rowSize > sim.PageSize {
		return nil, fmt.Errorf("xsort: unusable row size %d", rowSize)
	}
	if compare == nil {
		compare = bytes.Compare
	}
	maxRows := budgetBytes / rowSize
	if maxRows < 16 {
		maxRows = 16
	}
	return &Sorter{
		disk:    disk,
		rowSize: rowSize,
		budget:  budgetBytes,
		compare: compare,
		maxRows: maxRows,
	}, nil
}

// RowsAdded returns the number of rows fed into the sorter.
func (s *Sorter) RowsAdded() int64 { return s.rowsIn }

// Spilled reports whether the input exceeded memory and runs were written
// to disk.
func (s *Sorter) Spilled() bool { return len(s.runs) > 0 }

// Add copies a row into the sorter.
func (s *Sorter) Add(row []byte) error {
	if s.done {
		return fmt.Errorf("xsort: Add after Finish")
	}
	if len(row) != s.rowSize {
		return fmt.Errorf("xsort: row is %d bytes, sorter uses %d", len(row), s.rowSize)
	}
	s.buf = append(s.buf, append([]byte(nil), row...))
	s.rowsIn++
	if len(s.buf) >= s.maxRows {
		return s.spill()
	}
	return nil
}

func (s *Sorter) sortBuf() {
	cmps := 0
	sort.Slice(s.buf, func(i, j int) bool {
		cmps++
		return s.compare(s.buf[i], s.buf[j]) < 0
	})
	s.disk.ChargeCompares(cmps)
}

const spillChunkPages = 16

func (s *Sorter) rowsPerPage() int { return sim.PageSize / s.rowSize }

// spill sorts the in-memory buffer and writes it as a run.
func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.sortBuf()
	if !s.haveTmp {
		s.file = s.disk.CreateFile()
		s.haveTmp = true
	}
	rpp := s.rowsPerPage()
	pages := (len(s.buf) + rpp - 1) / rpp
	run := runInfo{start: s.nextPg, pages: pages, rows: int64(len(s.buf))}
	// Allocate and write in chained chunks.
	for i := 0; i < pages; i++ {
		if _, err := s.disk.Allocate(s.file); err != nil {
			return err
		}
	}
	row := 0
	for base := 0; base < pages; base += spillChunkPages {
		n := spillChunkPages
		if base+n > pages {
			n = pages - base
		}
		chunk := make([][]byte, n)
		for i := range chunk {
			pg := make([]byte, sim.PageSize)
			for r := 0; r < rpp && row < len(s.buf); r++ {
				copy(pg[r*s.rowSize:], s.buf[row])
				row++
			}
			chunk[i] = pg
		}
		if err := s.disk.WriteRun(s.file, run.start+sim.PageNo(base), chunk); err != nil {
			return err
		}
	}
	s.nextPg += sim.PageNo(pages)
	s.runs = append(s.runs, run)
	s.buf = s.buf[:0]
	return nil
}

// Iterator yields rows in sorted order. The returned slice is only valid
// until the next call.
type Iterator struct {
	next  func() ([]byte, bool, error)
	close func() error
}

// Next returns the next row, or ok=false at the end.
func (it *Iterator) Next() ([]byte, bool, error) { return it.next() }

// Close releases temporary resources.
func (it *Iterator) Close() error {
	if it.close != nil {
		return it.close()
	}
	return nil
}

// Finish completes the sort and returns an iterator over the rows in order.
// The sorter cannot be reused afterwards.
func (s *Sorter) Finish() (*Iterator, error) {
	if s.done {
		return nil, fmt.Errorf("xsort: Finish called twice")
	}
	s.done = true
	if len(s.runs) == 0 {
		// Everything fit in memory: one in-memory sort, no I/O.
		s.sortBuf()
		i := 0
		buf := s.buf
		s.buf = nil
		return &Iterator{next: func() ([]byte, bool, error) {
			if i >= len(buf) {
				return nil, false, nil
			}
			r := buf[i]
			i++
			return r, true, nil
		}}, nil
	}
	// Spill the tail, then merge runs, multi-pass if the fan-in exceeds
	// one read buffer per run.
	if err := s.spill(); err != nil {
		return nil, err
	}
	fanIn := s.budget/(sim.PageSize*mergeBufPages) - 1
	if fanIn < 2 {
		fanIn = 2
	}
	runs := s.runs
	for len(runs) > fanIn {
		var next []runInfo
		for base := 0; base < len(runs); base += fanIn {
			n := fanIn
			if base+n > len(runs) {
				n = len(runs) - base
			}
			merged, err := s.mergeToRun(runs[base : base+n])
			if err != nil {
				return nil, err
			}
			next = append(next, merged)
		}
		runs = next
	}
	return s.mergeIterator(runs)
}

// mergeBufPages is the chained-I/O read buffer per run during merges.
const mergeBufPages = 4

// runReader streams one run with buffered chained reads.
type runReader struct {
	s      *Sorter
	run    runInfo
	pgOff  int // pages consumed
	rowOff int64
	buf    [][]byte
	bufPos int // row index within buf
	bufLen int // rows valid in buf
	cur    []byte
}

func (r *runReader) fill() error {
	if r.rowOff >= r.run.rows {
		r.cur = nil
		return nil
	}
	if r.bufPos >= r.bufLen {
		n := mergeBufPages
		if r.pgOff+n > r.run.pages {
			n = r.run.pages - r.pgOff
		}
		bufs := make([][]byte, n)
		for i := range bufs {
			bufs[i] = make([]byte, sim.PageSize)
		}
		if err := r.s.disk.ReadRun(r.s.file, r.run.start+sim.PageNo(r.pgOff), bufs); err != nil {
			return err
		}
		r.pgOff += n
		r.buf = bufs
		r.bufPos = 0
		rpp := r.s.rowsPerPage()
		r.bufLen = n * rpp
	}
	rpp := r.s.rowsPerPage()
	pg := r.bufPos / rpp
	slot := r.bufPos % rpp
	r.cur = r.buf[pg][slot*r.s.rowSize : (slot+1)*r.s.rowSize]
	return nil
}

func (r *runReader) advance() error {
	r.bufPos++
	r.rowOff++
	return r.fill()
}

// mergeHeap is a binary min-heap of run readers ordered by current row.
type mergeHeap struct {
	s       *Sorter
	readers []*runReader
}

func (h *mergeHeap) lessRR(a, b *runReader) bool {
	h.s.disk.ChargeCompares(1)
	return h.s.compare(a.cur, b.cur) < 0
}

func (h *mergeHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.lessRR(h.readers[i], h.readers[p]) {
			break
		}
		h.readers[i], h.readers[p] = h.readers[p], h.readers[i]
		i = p
	}
}

func (h *mergeHeap) down(i int) {
	n := len(h.readers)
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < n && h.lessRR(h.readers[l], h.readers[sm]) {
			sm = l
		}
		if r < n && h.lessRR(h.readers[r], h.readers[sm]) {
			sm = r
		}
		if sm == i {
			return
		}
		h.readers[i], h.readers[sm] = h.readers[sm], h.readers[i]
		i = sm
	}
}

func (s *Sorter) openReaders(runs []runInfo) (*mergeHeap, error) {
	h := &mergeHeap{s: s}
	for _, r := range runs {
		rr := &runReader{s: s, run: r}
		if err := rr.fill(); err != nil {
			return nil, err
		}
		if rr.cur != nil {
			h.readers = append(h.readers, rr)
		}
	}
	for i := len(h.readers)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h, nil
}

// pop yields the globally smallest row and refills the heap.
func (h *mergeHeap) pop() ([]byte, bool, error) {
	if len(h.readers) == 0 {
		return nil, false, nil
	}
	top := h.readers[0]
	row := top.cur
	if err := top.advance(); err != nil {
		return nil, false, err
	}
	if top.cur == nil {
		last := len(h.readers) - 1
		h.readers[0] = h.readers[last]
		h.readers = h.readers[:last]
	}
	if len(h.readers) > 0 {
		h.down(0)
	}
	return row, true, nil
}

// mergeToRun merges runs into one new run on disk (one intermediate pass).
func (s *Sorter) mergeToRun(runs []runInfo) (runInfo, error) {
	h, err := s.openReaders(runs)
	if err != nil {
		return runInfo{}, err
	}
	var totalRows int64
	for _, r := range runs {
		totalRows += r.rows
	}
	rpp := s.rowsPerPage()
	pages := int((totalRows + int64(rpp) - 1) / int64(rpp))
	out := runInfo{start: s.nextPg, pages: pages, rows: totalRows}
	for i := 0; i < pages; i++ {
		if _, err := s.disk.Allocate(s.file); err != nil {
			return runInfo{}, err
		}
	}
	written := 0
	chunk := make([][]byte, 0, spillChunkPages)
	pg := make([]byte, sim.PageSize)
	inPg := 0
	flushChunk := func() error {
		if len(chunk) == 0 {
			return nil
		}
		err := s.disk.WriteRun(s.file, out.start+sim.PageNo(written), chunk)
		written += len(chunk)
		chunk = chunk[:0]
		return err
	}
	for {
		row, ok, err := h.pop()
		if err != nil {
			return runInfo{}, err
		}
		if !ok {
			break
		}
		copy(pg[inPg*s.rowSize:], row)
		inPg++
		if inPg == rpp {
			chunk = append(chunk, pg)
			pg = make([]byte, sim.PageSize)
			inPg = 0
			if len(chunk) == spillChunkPages {
				if err := flushChunk(); err != nil {
					return runInfo{}, err
				}
			}
		}
	}
	if inPg > 0 {
		chunk = append(chunk, pg)
	}
	if err := flushChunk(); err != nil {
		return runInfo{}, err
	}
	s.nextPg += sim.PageNo(pages)
	return out, nil
}

// mergeIterator streams the final merge of runs.
func (s *Sorter) mergeIterator(runs []runInfo) (*Iterator, error) {
	h, err := s.openReaders(runs)
	if err != nil {
		return nil, err
	}
	out := make([]byte, s.rowSize)
	return &Iterator{
		next: func() ([]byte, bool, error) {
			row, ok, err := h.pop()
			if err != nil || !ok {
				return nil, false, err
			}
			copy(out, row) // row aliases a reader buffer about to be refilled
			return out, true, nil
		},
		close: func() error {
			if s.haveTmp {
				s.haveTmp = false
				return s.disk.DropFile(s.file)
			}
			return nil
		},
	}, nil
}
