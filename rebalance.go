package bulkdel

import (
	"context"
	"fmt"
	"sort"
	"time"

	"bulkdel/internal/cc"
	"bulkdel/internal/heap"
	"bulkdel/internal/obs"
	"bulkdel/internal/place"
	"bulkdel/internal/record"
	"bulkdel/internal/sim"
	"bulkdel/internal/table"
	"bulkdel/internal/wal"
)

// PartitionSpec declares how a table's heap is split (see internal/heap):
// hash partitioning on the delete key, or key-range partitioning with
// explicit bounds. Key-range partitioning lets a bulk delete that covers a
// whole partition drop it by truncation instead of a merge pass.
type PartitionSpec = heap.PartitionSpec

// CreateTablePartitioned adds a table whose heap is split into
// spec.NumParts() partition files routed by spec's partition key. On a
// multi-device array each partition is placed by the device policy, so the
// per-partition passes of a bulk delete can overlap on separate spindles.
func (db *DB) CreateTablePartitioned(name string, numFields, recordSize int, spec PartitionSpec) (*Table, error) {
	if db.crashed.Load() {
		return nil, errCrashed
	}
	schema := record.Schema{NumFields: numFields, Size: recordSize}
	if err := spec.Validate(schema); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if _, ok := db.tables[name]; ok {
		db.mu.Unlock()
		return nil, fmt.Errorf("bulkdel: table %q already exists", name)
	}
	t, err := table.CreatePartitioned(db.pool, name, schema, spec)
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	t.Lock = db.cc.Lock(name)
	if db.mvccOn() {
		t.MVCC = table.NewMVCC(db.epochs)
	}
	tbl := &Table{db: db, t: t}
	db.tables[name] = tbl
	db.mu.Unlock()
	if err := tbl.placeHeapPartitions(); err != nil {
		return nil, err
	}
	if err := db.saveCatalog(); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Partitions reports how many heap partitions the table has (1 = a plain
// single-file heap).
func (tbl *Table) Partitions() int { return len(tbl.t.Heap.Parts()) }

// PartitionSpec returns the table's partitioning declaration (zero value
// for a single-file heap).
func (tbl *Table) PartitionSpec() PartitionSpec {
	if ph, ok := tbl.t.Heap.(*heap.Partitioned); ok {
		return ph.Spec()
	}
	return PartitionSpec{}
}

// AlterPartitioning rewrites the table's heap under the new spec (a zero
// spec converts back to a single file): every record is re-routed into the
// new partition layout and every index is rebuilt in place — file IDs and
// device placements survive, so the catalog's index entries stay valid. The
// statement takes the table's Structural lock — the rewrite renumbers every
// RID, so snapshot readers are drained, not admitted; it is not
// WAL-protected (like the other DDL, a crash mid-rewrite loses the
// statement, not the log).
func (tbl *Table) AlterPartitioning(spec PartitionSpec) error {
	if tbl.db.crashed.Load() {
		return errCrashed
	}
	if spec.NumParts() > 0 {
		if err := spec.Validate(tbl.t.Schema); err != nil {
			return err
		}
	}
	stmt, held := tbl.db.beginStatement("alter-partitioning", tbl.t.Name,
		[]cc.Claim{{Table: tbl.t.Name, Mode: cc.Structural}})
	defer tbl.db.endStatement(stmt, held)
	tbl.waitIndexesOnline()
	if err := tbl.t.Repartition(spec); err != nil {
		return err
	}
	if err := tbl.placeHeapPartitions(); err != nil {
		return err
	}
	tbl.db.obs.Registry().Counter("repartitions_run").Add(1)
	return tbl.db.saveCatalog()
}

// placeHeapPartitions spreads a partitioned heap's files across the data
// devices via the placement policy. Single-file heaps stay on the system
// device (their sequential pass shares it with the WAL, as before).
func (tbl *Table) placeHeapPartitions() error {
	parts := tbl.t.Heap.Parts()
	if len(parts) <= 1 || tbl.db.numDataDevices() <= 1 {
		return nil
	}
	avoid := make(map[int]bool)
	for _, ix := range tbl.t.Idx {
		avoid[tbl.db.disk.DeviceOf(ix.Tree.ID())] = true
	}
	for _, p := range parts {
		dev := tbl.db.pickDevice(avoid)
		if err := tbl.db.pool.Relocate(p.ID(), dev); err != nil {
			return err
		}
		avoid[dev] = true
	}
	return nil
}

// deviceAffinity is the set of devices the table's structures already
// occupy — the placement policy avoids them so a statement's per-structure
// passes land on separate arms.
func (tbl *Table) deviceAffinity() map[int]bool {
	avoid := make(map[int]bool)
	for _, p := range tbl.t.Heap.Parts() {
		avoid[tbl.db.disk.DeviceOf(p.ID())] = true
	}
	for _, ix := range tbl.t.Idx {
		avoid[tbl.db.disk.DeviceOf(ix.Tree.ID())] = true
	}
	return avoid
}

// pickDevice scores the array's current allocation and returns the device
// a new data file should land on.
func (db *DB) pickDevice(avoid map[int]bool) int {
	return place.Pick(place.Loads(db.disk.NumDevices(), db.disk.Placements()), avoid)
}

// numDataDevices returns the configured data-device count (Options.Devices,
// possibly grown by GrowDevices), read under the catalog lock.
func (db *DB) numDataDevices() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.opts.Devices
}

// GrowDevices extends the disk array to `devices` data devices (plus the
// system device). Existing files stay where they are — run Rebalance to
// migrate load onto the new arms. Shrinking is not supported.
func (db *DB) GrowDevices(devices int) error {
	if db.crashed.Load() {
		return errCrashed
	}
	db.mu.Lock()
	if devices < db.opts.Devices {
		db.mu.Unlock()
		return fmt.Errorf("bulkdel: cannot shrink the array from %d to %d devices", db.opts.Devices, devices)
	}
	db.opts.Devices = devices
	db.mu.Unlock()
	if devices > 1 {
		db.disk.ConfigureDevices(devices + 1)
	}
	return db.saveCatalog()
}

// MoveReport is one completed file migration.
type MoveReport struct {
	File     sim.FileID
	From, To int
	Pages    int64
}

// RebalanceResult reports a Rebalance run.
type RebalanceResult struct {
	// Moves actually executed, in plan order.
	Moves []MoveReport
	// PagesMoved is the total migrated volume.
	PagesMoved int64
	// Elapsed is the simulated time the migrations cost (reading every
	// page on the source arm and writing it on the destination).
	Elapsed time.Duration
}

// Rebalance levels the data devices' allocation by migrating heap
// partitions and index trees onto emptier arms — typically after
// GrowDevices added spindles. It takes every table's exclusive lock (a
// migration must not race a statement using the file), and with the WAL
// enabled each move is bracketed by move-start/move-done records: a crash
// mid-migration is recovered by redoing the move, so the file is always
// intact on exactly one device.
func (db *DB) Rebalance() (*RebalanceResult, error) {
	return db.RebalanceCtx(context.Background())
}

// RebalanceCtx is Rebalance under a cancellation context. Move boundaries
// are the recoverable checkpoints: each migration is bracketed by WAL
// move-start/move-done records and is complete in itself, so a done context
// stops the run between moves — completed migrations stay (and are saved to
// the catalog), pending ones are simply not started — and the call returns
// ErrCancelled wrapping the context's error alongside the partial result.
func (db *DB) RebalanceCtx(ctx context.Context) (*RebalanceResult, error) {
	if db.crashed.Load() {
		return nil, errCrashed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	db.mu.Lock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	db.mu.Unlock()
	sort.Strings(names)
	claims := make([]cc.Claim, len(names))
	for i, n := range names {
		// Structural: a migration moves a file between arms; snapshot
		// readers must not be probing its pages mid-copy.
		claims[i] = cc.Claim{Table: n, Mode: cc.Structural}
	}
	stmt, held := db.beginStatement("rebalance", "*", claims)
	defer db.endStatement(stmt, held)
	db.mu.Lock()
	owned := make(map[sim.FileID]bool)
	for _, tbl := range db.tables {
		tbl.waitIndexesOnline()
		for _, p := range tbl.t.Heap.Parts() {
			owned[p.ID()] = true
		}
		for _, ix := range tbl.t.Idx {
			owned[ix.Tree.ID()] = true
		}
	}
	db.mu.Unlock()

	var ps []sim.Placement
	for _, p := range db.disk.Placements() {
		if owned[p.File] {
			ps = append(ps, p)
		}
	}
	plan := place.PlanRebalance(db.disk.NumDevices(), ps)
	res := &RebalanceResult{}
	start := db.disk.Clock()
	var cancelErr error
	for _, m := range plan {
		select {
		case <-ctx.Done():
			stmt.Event(obs.EvCancel, fmt.Sprintf("rebalance stopped after %d/%d moves", len(res.Moves), len(plan)))
			cancelErr = fmt.Errorf("bulkdel: rebalance: %w: %v", ErrCancelled, ctx.Err())
		default:
		}
		if cancelErr != nil {
			break
		}
		if err := db.migrateFile(m.File, m.To); err != nil {
			return res, err
		}
		res.Moves = append(res.Moves, MoveReport{File: m.File, From: m.From, To: m.To, Pages: int64(m.Pages)})
		res.PagesMoved += int64(m.Pages)
	}
	res.Elapsed = db.disk.Clock() - start
	reg := db.obs.Registry()
	reg.Counter("rebalance_runs").Add(1)
	reg.Counter("rebalance_moves").Add(int64(len(res.Moves)))
	reg.Counter("rebalance_pages_moved").Add(res.PagesMoved)
	if len(res.Moves) > 0 {
		// Completed moves are durable in the WAL either way; the catalog
		// save makes them visible without a log replay — on the cancel path
		// too, so a cancelled rebalance leaves no catalog drift.
		if err := db.saveCatalog(); err != nil {
			return res, err
		}
	}
	return res, cancelErr
}

// migrateFile moves one file to dev under the move protocol: log
// move-start, complete the on-disk image (flush dirty frames), physically
// copy the pages — read them on the source arm, retarget the file, write
// them back on the destination — then log move-done. Redoing the whole
// sequence after a crash is idempotent: the pages' content never changes,
// only the arm they live on.
func (db *DB) migrateFile(id sim.FileID, dev int) error {
	var tx uint64
	if db.log != nil {
		tx = db.nextTx()
		if _, err := db.log.Append(wal.TMoveStart, tx, uint64(id), uint64(dev), nil); err != nil {
			return err
		}
		if err := db.log.Flush(); err != nil {
			return err
		}
	}
	if err := db.pool.FlushFile(id); err != nil {
		return err
	}
	n, err := db.disk.NumPages(id)
	if err != nil {
		return err
	}
	var bufs [][]byte
	if n > 0 {
		bufs = make([][]byte, n)
		for i := range bufs {
			bufs[i] = make([]byte, sim.PageSize)
		}
		if err := db.disk.ReadRun(id, 0, bufs); err != nil {
			return err
		}
	}
	if err := db.pool.Relocate(id, dev); err != nil {
		return err
	}
	if err := db.disk.WriteRun(id, 0, bufs); err != nil {
		return err
	}
	if db.log != nil {
		if _, err := db.log.Append(wal.TMoveDone, tx, uint64(id), uint64(dev), nil); err != nil {
			return err
		}
		if err := db.log.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// FileLayout is one live file's row in a DeviceLayout: its identity,
// page count, and byte size (pages x the simulated page size).
type FileLayout struct {
	// File is the simulated disk's file ID.
	File sim.FileID
	// Pages allocated to the file.
	Pages int64
	// Bytes is the file's allocated size in bytes.
	Bytes int64
}

// DeviceLayout is one device's row in DB.Layout.
type DeviceLayout struct {
	// Device index (0 is the system device).
	Device int
	// Files currently placed on the device.
	Files int
	// Pages allocated to those files.
	Pages int64
	// Bytes allocated to those files (Pages x the simulated page size).
	Bytes int64
	// Busy is the device's accumulated busy time.
	Busy time.Duration
	// ByFile lists each live file on the device with its byte size,
	// sorted by file ID.
	ByFile []FileLayout
}

// Layout reports the per-device file layout of the array: how many files,
// pages, and bytes each device holds (with a per-file breakdown) and how
// much simulated time it has been busy.
func (db *DB) Layout() []DeviceLayout {
	n := db.disk.NumDevices()
	out := make([]DeviceLayout, n)
	for i := range out {
		out[i].Device = i
		out[i].Busy = db.disk.DeviceBusy(i)
	}
	for _, p := range db.disk.Placements() {
		d := &out[p.Device]
		d.Files++
		d.Pages += int64(p.Pages)
		d.Bytes += int64(p.Pages) * sim.PageSize
		d.ByFile = append(d.ByFile, FileLayout{
			File:  p.File,
			Pages: int64(p.Pages),
			Bytes: int64(p.Pages) * sim.PageSize,
		})
	}
	return out
}
