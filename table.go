package bulkdel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"bulkdel/internal/btree"
	"bulkdel/internal/cc"
	"bulkdel/internal/core"
	"bulkdel/internal/lsm"
	"bulkdel/internal/obs"
	"bulkdel/internal/record"
	"bulkdel/internal/sim"
	"bulkdel/internal/table"
)

// IndexOptions describes an index to create.
type IndexOptions struct {
	// Name of the index (unique per table).
	Name string
	// Field is the attribute position the index covers.
	Field int
	// KeyLen widens the stored key (0 = 8 bytes). Wider keys shrink the
	// fan-out and grow the tree.
	KeyLen int
	// Unique enforces key uniqueness; unique indexes are processed first
	// during bulk deletes (the paper's §3.1 requirement).
	Unique bool
	// Clustered declares that the heap is loaded in this attribute's
	// order (the engine does not re-sort existing data).
	Clustered bool
	// Priority ranks application-critical indexes for processing order.
	Priority int
}

// Table is a base table with its indexes.
type Table struct {
	db *DB
	t  *table.Table
	// lsm, when non-nil, marks the table as LSM-backed: t is a schema
	// stub (nil heap, no indexes) and every data path routes through the
	// tree instead. See lsm_backend.go.
	lsm *lsm.Tree
	// updMu serializes updater DML (Insert/DeleteRow) against each
	// other. It stands in for the fine-grained page latches a production
	// engine would take; the bulk deleter does not take it — during a
	// concurrent bulk delete it only touches offline index trees, which
	// updaters reach exclusively through their (thread-safe) side-files.
	updMu sync.Mutex
}

// Name returns the table name.
func (tbl *Table) Name() string { return tbl.t.Name }

// NumFields returns the number of int64 attributes.
func (tbl *Table) NumFields() int { return tbl.t.Schema.NumFields }

// Count returns the number of live records. On an LSM table this is a
// merged scan (tombstones subtract); a scan error reports -1.
func (tbl *Table) Count() int64 {
	if tbl.lsm != nil {
		n, err := tbl.lsmCount()
		if err != nil {
			return -1
		}
		return n
	}
	return tbl.t.Heap.Count()
}

// CreateIndex builds an index over the current contents (scan + external
// sort + bottom-up bulk load). On a multi-device array (Options.Devices)
// the new tree is placed by the device policy (internal/place): the
// least-loaded data device the table does not already occupy, so
// independent ⋈̸ passes of a parallel bulk delete can overlap on separate
// spindles.
func (tbl *Table) CreateIndex(opts IndexOptions) error {
	if tbl.db.crashed.Load() {
		return errCrashed
	}
	if tbl.lsm != nil {
		return fmt.Errorf("bulkdel: table %s is LSM-backed; secondary indexes are not supported", tbl.t.Name)
	}
	// Structural claim: the build scans the heap and installs the new tree,
	// and no reader — snapshot readers included — may observe the table
	// while the scan races updaters.
	stmt, held := tbl.db.beginStatement("create-index", tbl.t.Name,
		[]cc.Claim{{Table: tbl.t.Name, Mode: cc.Structural}})
	defer tbl.db.endStatement(stmt, held)
	tbl.waitIndexesOnline()
	ix, err := tbl.t.CreateIndex(table.IndexDef{
		Name: opts.Name, Field: opts.Field, KeyLen: opts.KeyLen,
		Unique: opts.Unique, Clustered: opts.Clustered, Priority: opts.Priority,
	})
	if err != nil {
		return err
	}
	if tbl.db.numDataDevices() > 1 {
		dev := tbl.db.pickDevice(tbl.deviceAffinity())
		if err := tbl.db.pool.Relocate(ix.Tree.ID(), dev); err != nil {
			return err
		}
	}
	return tbl.db.saveCatalog()
}

// DropIndex removes an index.
func (tbl *Table) DropIndex(name string) error {
	if err := tbl.t.DropIndex(name); err != nil {
		return err
	}
	return tbl.db.saveCatalog()
}

// IndexNames lists the table's indexes in catalog order.
func (tbl *Table) IndexNames() []string {
	var out []string
	for _, ix := range tbl.t.Idx {
		out = append(out, ix.Def.Name)
	}
	return out
}

// IndexHeight returns the height of the named index (0 if absent).
func (tbl *Table) IndexHeight(name string) int {
	ix := tbl.t.FindIndex(name)
	if ix == nil {
		return 0
	}
	return ix.Tree.Height()
}

// Insert adds one row (values for the leading fields; the rest zero) and
// maintains every index. It returns the new record's RID. Inserts take a
// shared table lock, so they block while a bulk delete holds the table
// exclusively and resume once the lock is released (after the heap and the
// unique indexes are processed); updates to still-offline indexes go
// through their side-files.
func (tbl *Table) Insert(fields ...int64) (RID, error) {
	if tbl.db.crashed.Load() {
		return record.NilRID, errCrashed
	}
	if tbl.lsm != nil {
		return tbl.lsmInsert(fields)
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	tbl.updMu.Lock()
	defer tbl.updMu.Unlock()
	return tbl.t.Insert(fields)
}

// InsertDirect adds a row using direct propagation when indexes are
// offline during a concurrent bulk delete: entries are installed
// immediately and marked undeletable (paper §3.1.2).
func (tbl *Table) InsertDirect(fields ...int64) (RID, error) {
	if tbl.db.crashed.Load() {
		return record.NilRID, errCrashed
	}
	if tbl.lsm != nil {
		return tbl.lsmInsert(fields)
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	tbl.updMu.Lock()
	defer tbl.updMu.Unlock()
	return tbl.t.InsertDirect(fields)
}

// DeleteRow removes one record by RID.
func (tbl *Table) DeleteRow(rid RID) error {
	if tbl.lsm != nil {
		return fmt.Errorf("bulkdel: table %s is LSM-backed and has no RIDs; delete by key", tbl.t.Name)
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	tbl.updMu.Lock()
	defer tbl.updMu.Unlock()
	return tbl.t.DeleteRow(rid)
}

// beginSnapshotRead opens an MVCC snapshot read on the table: it takes the
// snapshot-read lock mode (admitted alongside a bulk delete's exclusive
// claim; blocked only by Structural claims), captures the commit epoch, and
// returns it with a release func. Callers must hold neither lock already.
func (tbl *Table) beginSnapshotRead() (s uint64, done func()) {
	blocked := tbl.t.Lock.LockSnapshotRead()
	reg := tbl.db.obs.Registry()
	reg.Counter(obs.MetricSnapshotReads).Add(1)
	if blocked {
		reg.Counter(obs.MetricSnapshotReadWaits).Add(1)
	}
	s = tbl.db.epochs.Snapshot()
	mv := tbl.t.MVCC
	return s, func() {
		tbl.db.epochs.Release(s)
		mv.Prune() // versions only this snapshot needed can go now
		tbl.db.noteRetainedBytes()
		tbl.t.Lock.UnlockSnapshotRead()
	}
}

// noteFallbackScan records an indexed snapshot lookup that was served by
// the visibility-filtered heap scan instead of the index tree.
func (tbl *Table) noteFallbackScan(field int, usedIndex bool) {
	if !usedIndex && tbl.t.IndexOnField(field) != nil {
		tbl.db.obs.Registry().Counter(obs.MetricSnapshotFallbackScans).Add(1)
	}
}

// Get decodes the record at rid. With snapshot reads enabled (the default)
// it resolves the RID against a commit-epoch snapshot and does not block
// behind a concurrent bulk delete's exclusive lock. With them disabled it
// takes a shared table lock: it blocks while a bulk delete holds the table
// exclusively and proceeds once the §3.1 critical phase releases the lock
// (indexes still offline are not needed — Get reads the heap).
func (tbl *Table) Get(rid RID) ([]int64, error) {
	if tbl.lsm != nil {
		return nil, fmt.Errorf("bulkdel: table %s is LSM-backed and has no RIDs; use Lookup", tbl.t.Name)
	}
	if tbl.t.MVCC != nil {
		s, done := tbl.beginSnapshotRead()
		defer done()
		row, ok, err := tbl.t.SnapshotRow(rid, s)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("bulkdel: no record at %s", rid)
		}
		return row, nil
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	return tbl.t.Get(rid)
}

// HasIndexOnField reports whether some index covers the field, i.e.
// whether Lookup/LookupRIDs on it can use an access path.
func (tbl *Table) HasIndexOnField(field int) bool {
	return tbl.t.IndexOnField(field) != nil
}

// Lookup returns all rows whose field equals v, via an index on the field.
// With snapshot reads enabled it runs against a commit-epoch snapshot: it
// never blocks behind a bulk delete, and while one holds the table's index
// trees offline the lookup degrades to a visibility-filtered heap scan.
func (tbl *Table) Lookup(field int, v int64) ([][]int64, error) {
	if tbl.lsm != nil {
		return tbl.lsmLookup(field, v)
	}
	if tbl.t.MVCC != nil {
		s, done := tbl.beginSnapshotRead()
		defer done()
		rows, usedIndex, err := tbl.t.SnapshotLookup(field, v, s)
		tbl.noteFallbackScan(field, usedIndex)
		return rows, err
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	return tbl.t.Lookup(field, v)
}

// LookupRIDs returns the RIDs of all rows whose field equals v, via an
// index on the field. Under snapshot reads, RIDs of rows deleted after the
// snapshot are included — they name the snapshot's retained images, and a
// Get through the same open View resolves them; a fresh Get may not.
func (tbl *Table) LookupRIDs(field int, v int64) ([]RID, error) {
	if tbl.lsm != nil {
		return nil, fmt.Errorf("bulkdel: table %s is LSM-backed and has no RIDs", tbl.t.Name)
	}
	if tbl.t.MVCC != nil {
		if tbl.t.IndexOnField(field) == nil {
			return nil, fmt.Errorf("bulkdel: table %s has no index on field %d", tbl.t.Name, field)
		}
		s, done := tbl.beginSnapshotRead()
		defer done()
		rids, usedIndex, err := tbl.t.SnapshotLookupRIDs(field, v, s)
		tbl.noteFallbackScan(field, usedIndex)
		return rids, err
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	ix := tbl.t.IndexOnField(field)
	if ix == nil {
		return nil, fmt.Errorf("bulkdel: table %s has no index on field %d", tbl.t.Name, field)
	}
	// Wait out a previous statement's still-offline index pass (§3.1 early
	// release) before traversing the tree; see Table.Lookup. The latch
	// closes the torn-leaf window against concurrent online updaters.
	ix.Gate.WaitOnline()
	ix.Latch.RLock()
	defer ix.Latch.RUnlock()
	return ix.Tree.Search(ix.EncodeKey(v))
}

// LookupRange returns all rows with lo <= field value <= hi (both bounds
// inclusive), via an index on the field when one exists, else a heap scan.
// Index results arrive in key order; scan results in physical order.
func (tbl *Table) LookupRange(field int, lo, hi int64) ([][]int64, error) {
	if tbl.lsm != nil {
		return tbl.lsmLookupRange(field, lo, hi)
	}
	if tbl.t.MVCC != nil {
		s, done := tbl.beginSnapshotRead()
		defer done()
		rows, usedIndex, err := tbl.t.SnapshotLookupRange(field, lo, hi, s)
		tbl.noteFallbackScan(field, usedIndex)
		return rows, err
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	if lo > hi {
		return nil, nil
	}
	ix := tbl.t.IndexOnField(field)
	if ix == nil {
		var out [][]int64
		err := tbl.t.Heap.Scan(func(_ record.RID, rec []byte) error {
			v := tbl.t.Schema.Field(rec, field)
			if v >= lo && v <= hi {
				vals, err := tbl.t.Schema.Decode(rec)
				if err != nil {
					return err
				}
				out = append(out, vals)
			}
			return nil
		})
		return out, err
	}
	ix.Gate.WaitOnline()
	// SearchRange's hi bound is exclusive; hi+1 would overflow at the
	// top of the key space, so MaxInt64 becomes an open-ended scan.
	var hiKey []byte
	if hi < math.MaxInt64 {
		hiKey = ix.EncodeKey(hi + 1)
	}
	var rids []RID
	ix.Latch.RLock()
	err := ix.Tree.SearchRange(ix.EncodeKey(lo), hiKey, func(_ []byte, rid record.RID) error {
		rids = append(rids, rid)
		return nil
	})
	ix.Latch.RUnlock()
	if err != nil {
		return nil, err
	}
	out := make([][]int64, 0, len(rids))
	for _, rid := range rids {
		row, err := tbl.t.Get(rid)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// Scan calls fn for every row in physical order. Under snapshot reads the
// surviving rows come first in physical order, then the snapshot's retained
// rows (deleted after the snapshot) in RID order.
func (tbl *Table) Scan(fn func(rid RID, fields []int64) error) error {
	if tbl.lsm != nil {
		return tbl.lsmScan(fn)
	}
	if tbl.t.MVCC != nil {
		s, done := tbl.beginSnapshotRead()
		defer done()
		return tbl.t.SnapshotScan(s, fn)
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	return tbl.t.Heap.Scan(func(rid record.RID, rec []byte) error {
		vals, err := tbl.t.Schema.Decode(rec)
		if err != nil {
			return err
		}
		return fn(rid, vals)
	})
}

// View opens a stable read view: a snapshot epoch held across calls, so a
// sequence of reads observes one consistent state of the table regardless
// of concurrent deletes. The view admits alongside a bulk delete's
// exclusive lock (it blocks only behind Structural passes) and must be
// Closed — an open view pins retained versions and holds a snapshot-reader
// registration that Structural claims drain.
func (tbl *Table) View() (*View, error) {
	if tbl.db.crashed.Load() {
		return nil, errCrashed
	}
	if tbl.lsm != nil {
		return nil, fmt.Errorf("bulkdel: table %s is LSM-backed; MVCC views are not supported", tbl.t.Name)
	}
	if tbl.t.MVCC == nil {
		return nil, fmt.Errorf("bulkdel: snapshot reads are disabled (Options.DisableSnapshotReads)")
	}
	s, done := tbl.beginSnapshotRead()
	return &View{tbl: tbl, s: s, done: done}, nil
}

// View is a stable MVCC read view over one table. Its read methods mirror
// the table's, evaluated at the view's snapshot epoch. Not safe for
// concurrent use by multiple goroutines.
type View struct {
	tbl  *Table
	s    uint64
	done func()
}

// Epoch returns the view's snapshot epoch.
func (v *View) Epoch() uint64 { return v.s }

// Close releases the view's snapshot. Idempotent.
func (v *View) Close() {
	if v.done != nil {
		v.done()
		v.done = nil
	}
}

// Get decodes the record at rid as of the view's snapshot; ok is false when
// the snapshot holds no such row.
func (v *View) Get(rid RID) (fields []int64, ok bool, err error) {
	return v.tbl.t.SnapshotRow(rid, v.s)
}

// Lookup returns all rows whose field equals val, as of the snapshot.
func (v *View) Lookup(field int, val int64) ([][]int64, error) {
	rows, usedIndex, err := v.tbl.t.SnapshotLookup(field, val, v.s)
	v.tbl.noteFallbackScan(field, usedIndex)
	return rows, err
}

// LookupRange returns all rows with lo <= field <= hi, as of the snapshot.
func (v *View) LookupRange(field int, lo, hi int64) ([][]int64, error) {
	rows, usedIndex, err := v.tbl.t.SnapshotLookupRange(field, lo, hi, v.s)
	v.tbl.noteFallbackScan(field, usedIndex)
	return rows, err
}

// Scan calls fn for every row visible to the snapshot.
func (v *View) Scan(fn func(rid RID, fields []int64) error) error {
	return v.tbl.t.SnapshotScan(v.s, fn)
}

// Check verifies heap/index agreement and every tree invariant. Like the
// other read entry points it takes the shared table lock, and it additionally
// waits for every index gate: a previous statement's early-released index
// passes must finish before the trees can be scanned (or judged).
func (tbl *Table) Check() error {
	if tbl.lsm != nil {
		tbl.t.Lock.LockShared()
		defer tbl.t.Lock.UnlockShared()
		return tbl.lsm.Check()
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	tbl.waitIndexesOnline()
	return tbl.t.CheckConsistency()
}

// Flush forces the table's pages to disk. LSM tables are a no-op: the
// memtable's durability comes from the WAL, and SSTables are flushed as
// they are built.
func (tbl *Table) Flush() error {
	if tbl.lsm != nil {
		return nil
	}
	return tbl.t.Flush()
}

// SetDeletePolicy switches the traditional delete's page reclamation
// between free-at-empty (default, the paper's choice) and merge-at-half.
func (tbl *Table) SetDeletePolicy(mergeAtHalf bool) {
	if tbl.lsm != nil {
		return // no B-trees to tune
	}
	if mergeAtHalf {
		tbl.t.SetPolicyAll(btree.MergeAtHalf)
	} else {
		tbl.t.SetPolicyAll(btree.FreeAtEmpty)
	}
}

// BulkOptions tunes Table.BulkDelete.
type BulkOptions struct {
	// Method selects the plan (default Auto).
	Method Method
	// Memory is the sort/hash working budget in bytes (default 5 MB).
	Memory int
	// Reorganize enables §2.3 leaf reorganization during the passes.
	Reorganize bool
	// CheckpointRows overrides the number of deletions between
	// mid-structure WAL checkpoints (default 100000; only with the WAL).
	// Crash tests set it low to exercise checkpoint replay.
	CheckpointRows int
	// Concurrent enables the §3.1 protocol: exclusive table lock,
	// indexes offline, side-files applied as each index completes, the
	// lock released once the table and all unique indexes are done.
	// Without it the whole statement runs under the exclusive lock.
	Concurrent bool
	// Parallel caps the number of workers for the remaining-index ⋈̸
	// passes (0/1 = serial). The effective degree is clamped to the
	// number of distinct devices those indexes live on, so it only helps
	// on a multi-device array (Options.Devices).
	Parallel int
	// Ctx, when set, makes the statement cooperatively cancellable: the
	// executor polls it at recoverable boundaries (page-I/O checkpoints in
	// the pass loops, structure starts/completions, DAG-node dispatch) and
	// stops with ErrCancelled when it is done. With the WAL enabled the
	// engine then runs abort-to-consistency — the §3.2 roll-forward is
	// replayed online, while the statement still holds its locks and gates,
	// so the structures end in the exact state a crash at that boundary
	// followed by Recover would produce. Because recovery is roll-forward-
	// only, that state is "the delete completed": a cancel can only stop a
	// statement before its first durable record (zero effect) or after it
	// (full effect, reached via replay) — never half-way. Without a WAL the
	// only recoverable boundary is before any structure was modified, so
	// cancellation is ignored once work begins. Cascades inherit the
	// context.
	Ctx context.Context
	// Timeout, when > 0, is the statement's real-time deadline: shorthand
	// for wrapping Ctx (or Background) in context.WithTimeout for this
	// statement. Expiry surfaces as ErrCancelled wrapping
	// context.DeadlineExceeded and bumps cc_deadline_exceeded.
	Timeout time.Duration
	// LockWait, when > 0, bounds the real time spent acquiring the
	// statement's lock footprint. Expiry fails fast with ErrLockTimeout
	// before anything ran — always safe to retry (see DB.RunConcurrentCtx).
	LockWait time.Duration
}

// BulkResult reports a bulk delete.
type BulkResult struct {
	// Deleted records removed from the table.
	Deleted int64
	// Victims is the size of the victim list.
	Victims int
	// Method actually used.
	Method Method
	// Partitions used by the hash+range-partitioning plan.
	Partitions int
	// Elapsed simulated time: the serial-equivalent total — the sum of
	// every device's busy time plus CPU — regardless of parallelism.
	Elapsed time.Duration
	// Makespan is the statement's simulated wall-clock length: equal to
	// Elapsed for serial runs, shorter when the remaining-index passes
	// overlapped on separate devices.
	Makespan time.Duration
	// Workers that executed the remaining-index passes (1 = serial).
	Workers int
	// PlanText is the executed plan, rendered like the paper's figures.
	PlanText string
	// SideFileOps counts concurrent updates replayed from side-files.
	SideFileOps int
	// Cascaded counts rows removed from child tables by ON DELETE
	// CASCADE foreign keys (recursively).
	Cascaded int64
	// Trace is the statement's phase tree: one span per execution phase
	// (victim collection, sort, per-structure ⋈̸ pass, WAL flush), each
	// with its I/O attribution on the simulated clock.
	Trace *Trace

	stats *core.Stats
}

// ExplainAnalyze renders the executed plan annotated per node with the
// measured actuals — rows, page reads/writes, seeks, buffer hit ratio,
// WAL bytes, simulated time — beside the planner's estimates.
func (r *BulkResult) ExplainAnalyze() string {
	if r.stats == nil {
		return ""
	}
	return r.stats.ExplainAnalyze()
}

// MetricsJSON encodes the same data as ExplainAnalyze — method, planner
// estimates, per-structure I/O, the full phase trace — as stable JSON:
// identical runs produce identical bytes.
func (r *BulkResult) MetricsJSON() ([]byte, error) {
	if r.stats == nil {
		return nil, fmt.Errorf("bulkdel: result carries no statistics")
	}
	return r.stats.MetricsJSON()
}

// target builds core's view of the table.
func (tbl *Table) target() *core.Target {
	tgt := &core.Target{
		Name: tbl.t.Name, Heap: tbl.t.Heap, Schema: tbl.t.Schema, Pool: tbl.db.pool,
	}
	for _, ix := range tbl.t.Idx {
		tgt.Indexes = append(tgt.Indexes, core.IndexRef{
			Name: ix.Def.Name, Tree: ix.Tree, Field: ix.Def.Field,
			Unique: ix.Def.Unique, Clustered: ix.Def.Clustered,
			Priority: ix.Def.Priority, Gate: ix.Gate, Latch: &ix.Latch,
		})
	}
	return tgt
}

// retainTarget arms a target's MVCC retention hook, bound to one deleting
// statement's token: Retain copies each victim's pre-delete image into the
// version store before the slot is tombstoned or truncated away. A
// replayed statement (online roll-forward after cancel) must pass the same
// token as its first attempt, so its retained images commit with the
// statement instead of lingering pending forever.
func (tbl *Table) retainTarget(tgt *core.Target, token uint64) {
	mv := tbl.t.MVCC
	if mv == nil {
		return
	}
	reg := tbl.db.obs.Registry()
	tgt.Retain = func(rid record.RID, rec []byte) {
		mv.Retain(token, rid, rec)
		reg.Counter(obs.MetricVersionsRetained).Add(1)
		reg.Gauge(obs.MetricVersionsRetainedBytes).Add(int64(len(rec)))
	}
}

// BulkDelete executes DELETE FROM tbl WHERE field IN (values) with the
// vertical bulk delete operator — the paper's contribution. With the WAL
// enabled the statement is checkpointed and crash-recoverable (it is
// rolled forward, not back). Declared foreign keys are enforced first,
// vertically: RESTRICT probes run read-only before anything is modified,
// CASCADE recursively bulk-deletes the referencing child rows.
//
// The statement locks its whole footprint — this table plus every
// cascade-reachable child exclusively, RESTRICT children shared — up
// front, in the lock manager's deterministic order, so bulk deletes on
// different tables run concurrently and overlapping ones cannot deadlock.
func (tbl *Table) BulkDelete(field int, values []int64, opts BulkOptions) (*BulkResult, error) {
	if tbl.db.crashed.Load() {
		return nil, errCrashed
	}
	if tbl.lsm != nil {
		return tbl.lsmBulkDelete(field, values, opts)
	}
	// Overload guard: a statement that wants pool workers is shed here, at
	// admission — before any lock is taken or log record written — when the
	// pool's waiter queue is at its cap, so a shed statement is always safe
	// to retry.
	if opts.Parallel > 1 && !tbl.db.sched.Admit() {
		stmt := tbl.db.obs.Events().Begin("bulk-delete", tbl.t.Name)
		stmt.Event(obs.EvShed, "admission queue full")
		stmt.End()
		return nil, fmt.Errorf("bulkdel: bulk delete on %s: %w", tbl.t.Name, ErrOverloaded)
	}
	if opts.Timeout > 0 {
		parent := opts.Ctx
		if parent == nil {
			parent = context.Background()
		}
		ctx, cancel := context.WithTimeout(parent, opts.Timeout)
		defer cancel()
		opts.Ctx = ctx
		opts.Timeout = 0
	}
	claims, fks := tbl.db.deleteFootprint(tbl)
	stmt, held, err := tbl.db.beginStatementTimeout("bulk-delete", tbl.t.Name, claims, opts.LockWait)
	if err != nil {
		return nil, fmt.Errorf("bulkdel: bulk delete on %s: %w", tbl.t.Name, err)
	}
	defer tbl.db.endStatement(stmt, held)
	return tbl.bulkDeleteWithDepth(field, values, opts, 0, stmt, held, fks)
}

// bulkDeleteWithDepth runs one level of the (possibly cascading) delete.
// All locks were acquired by BulkDelete at depth 0; held carries them so
// recursion never re-acquires (which would self-deadlock). fks is the FK
// snapshot the footprint was computed from — every level enforces this
// snapshot, never a re-read of the live list, so the cascade graph cannot
// outgrow the locks.
func (tbl *Table) bulkDeleteWithDepth(field int, values []int64, opts BulkOptions, depth int, stmt *obs.Stmt, held *cc.Held, fks []ForeignKey) (*BulkResult, error) {
	if tbl.db.crashed.Load() {
		return nil, errCrashed
	}
	if opts.Memory <= 0 {
		opts.Memory = table.DefaultSortBudget
	}
	res := &BulkResult{Victims: len(values)}

	// Referential integrity first — "as early as possible and before
	// deleting records from the table and the indices" (paper §2.1).
	cascaded, err := tbl.db.enforceForeignKeys(tbl, field, values, opts, depth, stmt, held, fks)
	if err != nil {
		return nil, err
	}
	res.Cascaded = cascaded

	coreOpts := core.Options{
		Ctx:            opts.Ctx,
		Method:         opts.Method,
		Memory:         opts.Memory,
		Reorganize:     opts.Reorganize,
		CheckpointRows: opts.CheckpointRows,
		Parallel:       opts.Parallel,
		Sched:          tbl.db.sched,
		Stmt:           stmt,
	}
	if tbl.db.log != nil {
		coreOpts.Log = tbl.db.log
		coreOpts.TxID = tbl.db.nextTx()
	}

	// The statement trace: core fills in the phase spans; we own the root.
	tr := obs.NewTrace("bulk-delete",
		fmt.Sprintf("table=%s field=%d victims=%d", tbl.t.Name, field, len(values)),
		tbl.db.obsSource())
	coreOpts.Trace = tr
	res.Trace = tr

	// §3.1 concurrency protocol: the root level's exclusive lock is released
	// at this level's end, or earlier via OnCriticalDone; ReleaseTable is
	// idempotent. Cascade children (depth > 0) keep their locks until the
	// statement's ReleaseAll: a diamond FK graph can cascade into the same
	// child from two branches, and an early release after the first visit
	// would let another statement lock the child while our second visit
	// still mutates it.
	unlock := func() {}
	if depth == 0 {
		unlock = func() { held.ReleaseTable(tbl.t.Name) }
	}
	defer unlock()

	// A previous statement's early release means its non-critical index
	// passes may still be running offline; wait for every gate before
	// touching the trees (updaters may queue through side-files, but two
	// bulk passes on one tree must not overlap).
	tbl.waitIndexesOnline()

	// MVCC: open this level's retain token, and stamp its versions with one
	// commit epoch exactly once — at §3.1 early release in concurrent mode
	// (the statement's logical commit point), at level end otherwise.
	// BeginDelete runs before any gate goes offline: it drains snapshot
	// readers out of the index trees, then sends new ones to the
	// visibility-filtered heap scan until EndDelete — which is deferred
	// FIRST so it runs after the gate-cleanup defer below brings every tree
	// back online.
	mv := tbl.t.MVCC
	var token uint64
	levelCommit := func() {}
	if mv != nil {
		token = mv.NewToken()
		var commitOnce sync.Once
		levelCommit = func() {
			commitOnce.Do(func() {
				mv.CommitToken(token) // prunes behind the horizon
				tbl.db.noteRetainedBytes()
			})
		}
		defer levelCommit()
		mv.BeginDelete()
		defer mv.EndDelete()
	}

	// Parallel passes invoke OnStructureDone from concurrent goroutines;
	// the side-file replay below mutates res, so serialize it.
	var sfMu sync.Mutex

	if opts.Concurrent {
		byFile := make(map[sim.FileID]*table.Index, len(tbl.t.Idx))
		// reopened tracks the gates this statement has already brought back
		// online. The cleanup below must consult it, not Gate.State(): once
		// every pass is done the next statement may acquire the lock, pass
		// waitIndexesOnline, and take the gates offline again before our
		// deferred cleanup runs — quiescing that statement's side-file and
		// reopening its gates mid-pass would corrupt its trees.
		reopened := make(map[sim.FileID]bool, len(tbl.t.Idx))
		for _, ix := range tbl.t.Idx {
			ix.Gate.TakeOffline()
			stmt.Event(obs.EvGateOffline, ix.Def.Name)
			byFile[ix.Tree.ID()] = ix
		}
		coreOpts.Undeletable = tbl.t.Undeletable
		coreOpts.OnStructureDone = func(file sim.FileID) {
			sfMu.Lock()
			defer sfMu.Unlock()
			ix, ok := byFile[file]
			if !ok {
				return // the heap: nothing to reopen
			}
			reopened[file] = true
			// Apply the side-file: drain in batches while appends
			// continue, then quiesce for the final batch and bring
			// the index online (§3.1.1).
			before := res.SideFileOps
			sf := ix.Gate.SideFile()
			for sf.Len() > 64 {
				for _, op := range sf.Drain(64) {
					res.SideFileOps++
					_ = tbl.applySideOp(ix, op)
				}
			}
			for _, op := range sf.Quiesce() {
				res.SideFileOps++
				_ = tbl.applySideOp(ix, op)
			}
			ix.Gate.BringOnline()
			stmt.Event(obs.EvGateOnline,
				fmt.Sprintf("%s side-ops=%d", ix.Def.Name, res.SideFileOps-before))
		}
		coreOpts.OnCriticalDone = func() {
			// Table and unique indexes durable: this is the statement's
			// commit point. Stamp the retained versions before releasing
			// the lock, so no reader starting after the release can still
			// see the deleted rows (§3.1).
			levelCommit()
			if depth == 0 {
				stmt.Event(obs.EvEarlyRelease, tbl.t.Name)
			}
			unlock()
		}
		defer func() {
			// Whatever happens, no gate WE took offline stays offline. Only
			// not-yet-reopened gates are ours — an offline gate whose pass
			// completed belongs to the next statement (see reopened above).
			sfMu.Lock()
			defer sfMu.Unlock()
			for _, ix := range tbl.t.Idx {
				if !reopened[ix.Tree.ID()] {
					for _, op := range ix.Gate.SideFile().Quiesce() {
						res.SideFileOps++
						_ = tbl.applySideOp(ix, op)
					}
					ix.Gate.BringOnline()
					stmt.Event(obs.EvGateOnline, ix.Def.Name+" (cleanup)")
				}
			}
		}()
	}

	tgt := tbl.target()
	tbl.retainTarget(tgt, token)
	st, err := core.Execute(tgt, field, values, coreOpts)
	tr.Finish()
	tbl.db.obs.OnTrace(tr)
	if err != nil {
		if errors.Is(err, core.ErrCancelled) {
			// Abort-to-consistency runs HERE, inside the statement: the
			// deferred gate cleanup and lock release have not fired yet, so
			// the replay owns the structures exactly as crash recovery
			// would. After it returns, the deferred cleanup drains the
			// side-files and reopens the gates on the now-final trees —
			// the same epilogue as the success path. The replay retains
			// under this level's token, so the deferred levelCommit stamps
			// its versions too.
			if aerr := tbl.abortToConsistency(stmt, opts.Ctx, coreOpts.TxID, field, token); aerr != nil {
				return nil, fmt.Errorf("bulkdel: bulk delete on %s: abort-to-consistency failed: %v (statement error: %w)",
					tbl.t.Name, aerr, err)
			}
		}
		return nil, fmt.Errorf("bulkdel: bulk delete on %s: %w", tbl.t.Name, err)
	}
	if depth == 0 {
		// The statement's footprint was acquired once, before depth 0 ran;
		// report the real blocking time on the root's stats only.
		st.LockWait = held.WaitTotal()
	}
	res.Deleted = st.Deleted
	res.Method = st.Method
	res.Partitions = st.Partitions
	res.Elapsed = st.Elapsed
	res.Makespan = st.Makespan
	res.Workers = st.Workers
	if res.Workers == 0 {
		res.Workers = 1
	}
	res.PlanText = st.PlanText
	res.stats = st
	return res, nil
}

// abortToConsistency handles a statement that stopped with ErrCancelled:
// it records the cancellation (cc_aborts, plus cc_deadline_exceeded when
// the context died of its deadline), then brings the structures to the
// exact state a crash at the same boundary followed by Recover would
// produce, by replaying the §3.2 roll-forward online (DB.rollForwardOnline).
// Must be called while the statement still holds its locks and gates.
func (tbl *Table) abortToConsistency(stmt *obs.Stmt, ctx context.Context, txID uint64, field int, token uint64) error {
	reg := tbl.db.obs.Registry()
	reg.Counter(obs.MetricAborts).Add(1)
	detail := "cancelled"
	if ctx != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		reg.Counter(obs.MetricDeadlineExceeded).Add(1)
		detail = "deadline exceeded"
	}
	stmt.Event(obs.EvCancel, detail)
	if tbl.db.log == nil {
		// No WAL: the executor only honors cancellation before any
		// structure was modified, so there is nothing to roll forward.
		stmt.Event(obs.EvAbort, "no wal: zero-effect abort")
		return nil
	}
	deleted, err := tbl.db.rollForwardOnline(tbl, txID, field, token)
	if err != nil {
		return err
	}
	stmt.Event(obs.EvAbort, fmt.Sprintf("online roll-forward complete, rows=%d", deleted))
	return nil
}

// waitIndexesOnline blocks until no index of the table is offline. Every
// statement that modifies the table through the index trees directly calls
// this right after taking the exclusive lock: the previous bulk delete may
// have released the lock early (§3.1) with its remaining index passes
// still in flight, and those passes own the offline trees until their
// gates reopen.
func (tbl *Table) waitIndexesOnline() {
	for _, ix := range tbl.t.Idx {
		ix.Gate.WaitOnline()
	}
}

// applySideOp replays one deferred index operation.
func (tbl *Table) applySideOp(ix *table.Index, op cc.Op) error {
	if op.Kind == cc.OpInsert {
		err := ix.Tree.Insert(op.Key, op.RID)
		if err == btree.ErrDuplicateKey {
			return err
		}
		return err
	}
	err := ix.Tree.Delete(op.Key, op.RID)
	if err == btree.ErrNotFound {
		return nil // already removed by the bulk delete
	}
	return err
}

// UpdateResult reports a bulk update.
type UpdateResult struct {
	// Updated records.
	Updated int64
	// EntriesMoved counts index entries deleted and reinserted.
	EntriesMoved int64
	// Elapsed simulated time.
	Elapsed time.Duration
}

// BulkUpdate executes
//
//	UPDATE tbl SET setField = transform(setField) WHERE predField IN (values)
//
// with the vertical technique the paper's introduction sketches for UPDATE
// statements: the records are updated in one physical-order pass and each
// index over setField receives a bulk delete of the old entries followed
// by a bulk insert of the new ones. Indexes over other attributes are
// untouched. The statement runs under the exclusive table lock and is not
// WAL-protected (see DESIGN.md's future-work notes).
func (tbl *Table) BulkUpdate(predField int, values []int64, setField int,
	transform func(int64) int64, opts BulkOptions) (*UpdateResult, error) {

	if tbl.db.crashed.Load() {
		return nil, errCrashed
	}
	if tbl.lsm != nil {
		return nil, fmt.Errorf("bulkdel: bulk update is not supported on LSM table %s", tbl.t.Name)
	}
	if opts.Memory <= 0 {
		opts.Memory = table.DefaultSortBudget
	}
	// Structural: unlike a bulk delete, the update rewrites records in
	// place without retaining pre-images, so snapshot readers must be
	// drained and held out, not admitted.
	stmt, held := tbl.db.beginStatement("bulk-update", tbl.t.Name,
		[]cc.Claim{{Table: tbl.t.Name, Mode: cc.Structural}})
	defer tbl.db.endStatement(stmt, held)
	tbl.waitIndexesOnline()
	st, err := core.ExecuteUpdate(tbl.target(), predField, values, setField, transform, core.Options{
		Memory:     opts.Memory,
		Reorganize: opts.Reorganize,
		Stmt:       stmt,
	})
	if err != nil {
		return nil, err
	}
	tbl.resetSnapshots()
	return &UpdateResult{
		Updated:      st.Updated,
		EntriesMoved: st.EntriesMoved,
		Elapsed:      st.Elapsed,
	}, nil
}

// DeleteTraditional runs the record-at-a-time baseline: every victim
// probed through the access index, each record removed from the heap and
// from every index individually.
func (tbl *Table) DeleteTraditional(field int, values []int64, sortValues bool) (int64, error) {
	if tbl.db.crashed.Load() {
		return 0, errCrashed
	}
	if tbl.lsm != nil {
		return 0, fmt.Errorf("bulkdel: traditional delete is not supported on LSM table %s", tbl.t.Name)
	}
	// Structural: the baseline deletes record-at-a-time with no version
	// retention, so snapshot readers are held out for the duration.
	stmt, held := tbl.db.beginStatement("delete-traditional", tbl.t.Name,
		[]cc.Claim{{Table: tbl.t.Name, Mode: cc.Structural}})
	defer tbl.db.endStatement(stmt, held)
	tbl.waitIndexesOnline()
	n, err := tbl.t.TraditionalDelete(field, values, sortValues)
	tbl.resetSnapshots()
	return n, err
}

// DeleteDropCreate runs the drop-&-create baseline: secondary indexes are
// dropped, the delete runs against the access index only, and the dropped
// indexes are rebuilt.
func (tbl *Table) DeleteDropCreate(field int, values []int64) (int64, error) {
	if tbl.db.crashed.Load() {
		return 0, errCrashed
	}
	if tbl.lsm != nil {
		return 0, fmt.Errorf("bulkdel: drop-and-create delete is not supported on LSM table %s", tbl.t.Name)
	}
	// Structural: index trees are dropped and rebuilt wholesale; no reader
	// — snapshot or otherwise — may observe the intermediate state.
	stmt, held := tbl.db.beginStatement("delete-drop-create", tbl.t.Name,
		[]cc.Claim{{Table: tbl.t.Name, Mode: cc.Structural}})
	defer tbl.db.endStatement(stmt, held)
	tbl.waitIndexesOnline()
	n, err := tbl.t.DropCreateDelete(field, values, true)
	tbl.resetSnapshots()
	if err != nil {
		return n, err
	}
	return n, tbl.db.saveCatalog()
}

// resetSnapshots discards the table's volatile MVCC state after an offline
// structural pass. The caller must hold a Structural claim on the table, so
// no snapshot reader can be open.
func (tbl *Table) resetSnapshots() {
	if mv := tbl.t.MVCC; mv != nil {
		mv.Reset()
	}
}

// Explain renders the plan the given method would execute for a bulk
// delete on the field — the code form of the paper's Figures 3–5.
func (tbl *Table) Explain(field int, m Method, memory int) string {
	if tbl.lsm != nil {
		return fmt.Sprintf("LSMDelete(table=%s field=%d)\n  └─ tombstone write (range predicates: one range tombstone; O(1) I/O)\n", tbl.t.Name, field)
	}
	if memory <= 0 {
		memory = table.DefaultSortBudget
	}
	tgt := tbl.target()
	if m == Auto {
		m = core.ChooseMethod(tgt, field, 0, memory)
	}
	return core.BuildPlan(tgt, field, m, memory, 1).String()
}

// EstimateMethods returns the planner's cost estimates for a victim count,
// in plan order.
func (tbl *Table) EstimateMethods(field, victims, memory int) map[string]time.Duration {
	if memory <= 0 {
		memory = table.DefaultSortBudget
	}
	out := make(map[string]time.Duration)
	for _, e := range core.EstimateCosts(tbl.target(), field, victims, memory) {
		out[e.Method.String()] = e.Time
	}
	return out
}
