// Benchmarks regenerating every table and figure of the paper's evaluation
// plus the ablations called out in DESIGN.md. Each benchmark iteration
// builds a fresh database at 1/50 of the paper's scale (with the memory
// budget scaled along) and executes one DELETE statement; the reported
// custom metric `sim-min` is the simulated statement time in minutes — the
// paper's unit and the number to compare against the paper's plots. Run
// `cmd/bulkbench -rows 1000000` for the full-scale reproduction.
//
//	go test -bench=. -benchmem
package bulkdel_test

import (
	"testing"

	"bulkdel"
	"bulkdel/internal/bench"
	"bulkdel/internal/btree"
)

const benchRows = 20000

func runCase(b *testing.B, cfg bench.Config, ap bench.Approach) {
	b.Helper()
	cfg.Seed = 1
	var last bench.Result
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(cfg, ap)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Minutes, "sim-min")
	b.ReportMetric(float64(last.Deleted), "deleted")
}

// BenchmarkFigure1 — the introduction's motivating experiment: 3 unclustered
// indexes, traditional vs drop&create across delete fractions.
func BenchmarkFigure1(b *testing.B) {
	for _, f := range []float64{0.01, 0.05, 0.10, 0.15} {
		cfg := bench.Config{Rows: benchRows, Fraction: f, MemoryMB: 5, NumIndexes: 3}
		for _, row := range []struct {
			name string
			ap   bench.Approach
		}{
			{"traditional", bench.NotSortedTrad},
			{"drop-create", bench.DropCreate},
		} {
			b.Run(row.name+"/"+pct(f), func(b *testing.B) { runCase(b, cfg, row.ap) })
		}
	}
}

// BenchmarkFigure7 — Experiment 1: vary the number of deleted records
// (1 unclustered index, 5 MB memory).
func BenchmarkFigure7(b *testing.B) {
	for _, f := range []float64{0.05, 0.10, 0.15, 0.20} {
		cfg := bench.Config{Rows: benchRows, Fraction: f, MemoryMB: 5, NumIndexes: 1}
		for _, row := range []struct {
			name string
			ap   bench.Approach
		}{
			{"sorted-trad", bench.SortedTrad},
			{"not-sorted-trad", bench.NotSortedTrad},
			{"bulk-delete", bench.BulkSortMerge},
		} {
			b.Run(row.name+"/"+pct(f), func(b *testing.B) { runCase(b, cfg, row.ap) })
		}
	}
}

// BenchmarkFigure8 — Experiment 2: vary the number of indexes (15% deletes).
func BenchmarkFigure8(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		cfg := bench.Config{Rows: benchRows, Fraction: 0.15, MemoryMB: 5, NumIndexes: n}
		for _, row := range []struct {
			name string
			ap   bench.Approach
		}{
			{"sorted-trad", bench.SortedTrad},
			{"not-sorted-trad", bench.NotSortedTrad},
			{"drop-create", bench.DropCreate},
			{"bulk-delete", bench.BulkSortMerge},
		} {
			b.Run(row.name+"/"+idx(n), func(b *testing.B) { runCase(b, cfg, row.ap) })
		}
	}
}

// BenchmarkTable1 — Experiment 3: vary the index height by widening the
// inner keys (the paper's 512 → 100 keys per node).
func BenchmarkTable1(b *testing.B) {
	for _, kl := range []int{8, 48} {
		cfg := bench.Config{Rows: benchRows, Fraction: 0.15, MemoryMB: 5, NumIndexes: 1, KeyLen: kl}
		name := map[int]string{8: "height-lo", 48: "height-hi"}[kl]
		for _, row := range []struct {
			name string
			ap   bench.Approach
		}{
			{"sorted-bulk", bench.BulkSortMerge},
			{"sorted-trad", bench.SortedTrad},
			{"not-sorted-trad", bench.NotSortedTrad},
		} {
			b.Run(row.name+"/"+name, func(b *testing.B) { runCase(b, cfg, row.ap) })
		}
	}
}

// BenchmarkFigure9 — Experiment 4: vary the available memory.
func BenchmarkFigure9(b *testing.B) {
	for _, mb := range []float64{2, 6, 10} {
		cfg := bench.Config{Rows: benchRows, Fraction: 0.15, MemoryMB: mb, NumIndexes: 1}
		name := map[float64]string{2: "2MB", 6: "6MB", 10: "10MB"}[mb]
		for _, row := range []struct {
			name string
			ap   bench.Approach
		}{
			{"sorted-trad", bench.SortedTrad},
			{"not-sorted-trad", bench.NotSortedTrad},
			{"bulk-delete", bench.BulkSortMerge},
		} {
			b.Run(row.name+"/"+name, func(b *testing.B) { runCase(b, cfg, row.ap) })
		}
	}
}

// BenchmarkFigure10 — Experiment 5: the clustered-index case.
func BenchmarkFigure10(b *testing.B) {
	for _, f := range []float64{0.06, 0.15, 0.20} {
		for _, row := range []struct {
			name      string
			ap        bench.Approach
			clustered bool
		}{
			{"sorted-trad-clust", bench.SortedTrad, true},
			{"sorted-trad-unclust", bench.SortedTrad, false},
			{"not-sorted-trad-clust", bench.NotSortedTrad, true},
			{"bulk-delete", bench.BulkSortMerge, true},
		} {
			cfg := bench.Config{Rows: benchRows, Fraction: f, MemoryMB: 5,
				NumIndexes: 1, Clustered: row.clustered}
			b.Run(row.name+"/"+pct(f), func(b *testing.B) { runCase(b, cfg, row.ap) })
		}
	}
}

// BenchmarkReorgAblation — §2.3 leaf reorganization on/off at high delete
// fractions (the mechanism of Figure 6).
func BenchmarkReorgAblation(b *testing.B) {
	for _, reorg := range []bool{false, true} {
		cfg := bench.Config{Rows: benchRows, Fraction: 0.50, MemoryMB: 5,
			NumIndexes: 1, Reorganize: reorg}
		name := map[bool]string{false: "no-reorg", true: "reorg"}[reorg]
		b.Run(name, func(b *testing.B) { runCase(b, cfg, bench.BulkSortMerge) })
	}
}

// BenchmarkBDELMethods — the ⋈̸ method choice (sort/merge vs hash vs
// hash+range-partition; hash probes by RID — the "primary predicate"
// decision of §2.1) across memory budgets.
func BenchmarkBDELMethods(b *testing.B) {
	for _, mb := range []float64{2, 10} {
		name := map[float64]string{2: "2MB", 10: "10MB"}[mb]
		cfg := bench.Config{Rows: benchRows, Fraction: 0.15, MemoryMB: mb, NumIndexes: 3}
		for _, row := range []struct {
			name string
			ap   bench.Approach
		}{
			{"sort-merge", bench.BulkSortMerge},
			{"hash-by-rid", bench.BulkHash},
			{"hash-partition", bench.BulkPartition},
			{"auto", bench.BulkAuto},
		} {
			b.Run(row.name+"/"+name, func(b *testing.B) { runCase(b, cfg, row.ap) })
		}
	}
}

// BenchmarkDeletePolicy — free-at-empty (the paper's choice, after Johnson
// & Shasha) vs merge-at-half for the traditional delete.
func BenchmarkDeletePolicy(b *testing.B) {
	for _, row := range []struct {
		name   string
		policy btree.Policy
	}{
		{"free-at-empty", btree.FreeAtEmpty},
		{"merge-at-half", btree.MergeAtHalf},
	} {
		cfg := bench.Config{Rows: benchRows, Fraction: 0.15, MemoryMB: 5,
			NumIndexes: 1, Policy: row.policy}
		b.Run(row.name, func(b *testing.B) { runCase(b, cfg, bench.SortedTrad) })
	}
}

// BenchmarkChainedIO — the chained-I/O width the paper's prototype uses to
// "read chunks of several pages from disk".
func BenchmarkChainedIO(b *testing.B) {
	for _, ra := range []int{1, 8, 32} {
		cfg := bench.Config{Rows: benchRows, Fraction: 0.15, MemoryMB: 5,
			NumIndexes: 1, ReadAhead: ra}
		name := map[int]string{1: "1-page", 8: "8-pages", 32: "32-pages"}[ra]
		b.Run(name, func(b *testing.B) { runCase(b, cfg, bench.BulkSortMerge) })
	}
}

func pct(f float64) string {
	switch f {
	case 0.01:
		return "1pct"
	case 0.05:
		return "5pct"
	case 0.06:
		return "6pct"
	case 0.10:
		return "10pct"
	case 0.15:
		return "15pct"
	case 0.20:
		return "20pct"
	case 0.50:
		return "50pct"
	default:
		return "pct"
	}
}

func idx(n int) string {
	return map[int]string{1: "1idx", 2: "2idx", 3: "3idx"}[n]
}

// BenchmarkBulkUpdate — the UPDATE extension the paper's introduction
// sketches: vertical update vs a row-at-a-time loop, via the public API.
func BenchmarkBulkUpdate(b *testing.B) {
	build := func(b *testing.B) (*bulkdel.DB, *bulkdel.Table, []int64) {
		b.Helper()
		db, err := bulkdel.Open(bulkdel.Options{BufferBytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		tbl, err := db.CreateTable("emp", 2, 128)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < benchRows; i++ {
			if _, err := tbl.Insert(int64(i), int64(30000+i%50000)); err != nil {
				b.Fatal(err)
			}
		}
		if err := tbl.CreateIndex(bulkdel.IndexOptions{Name: "id", Field: 0, Unique: true}); err != nil {
			b.Fatal(err)
		}
		if err := tbl.CreateIndex(bulkdel.IndexOptions{Name: "salary", Field: 1}); err != nil {
			b.Fatal(err)
		}
		victims := make([]int64, benchRows/10)
		for i := range victims {
			victims[i] = int64(i * 7 % benchRows)
		}
		if err := db.Flush(); err != nil {
			b.Fatal(err)
		}
		return db, tbl, victims
	}
	b.Run("vertical", func(b *testing.B) {
		var mins float64
		for i := 0; i < b.N; i++ {
			db, tbl, victims := build(b)
			db.ResetDiskStats()
			start := db.Clock()
			res, err := tbl.BulkUpdate(0, victims, 1,
				func(s int64) int64 { return s + 1000 }, bulkdel.BulkOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if err := tbl.Flush(); err != nil {
				b.Fatal(err)
			}
			if res.Updated != int64(len(victims)) {
				b.Fatalf("updated %d", res.Updated)
			}
			mins = (db.Clock() - start).Minutes()
		}
		b.ReportMetric(mins, "sim-min")
	})
	b.Run("row-at-a-time", func(b *testing.B) {
		var mins float64
		for i := 0; i < b.N; i++ {
			db, tbl, victims := build(b)
			db.ResetDiskStats()
			start := db.Clock()
			for _, v := range victims {
				rows, err := tbl.Lookup(0, v)
				if err != nil || len(rows) != 1 {
					b.Fatalf("lookup %d: %v", v, err)
				}
				rids, err := tbl.LookupRIDs(0, v)
				if err != nil || len(rids) != 1 {
					b.Fatalf("rid %d: %v", v, err)
				}
				if err := tbl.DeleteRow(rids[0]); err != nil {
					b.Fatal(err)
				}
				if _, err := tbl.Insert(rows[0][0], rows[0][1]+1000); err != nil {
					b.Fatal(err)
				}
			}
			if err := tbl.Flush(); err != nil {
				b.Fatal(err)
			}
			mins = (db.Clock() - start).Minutes()
		}
		b.ReportMetric(mins, "sim-min")
	})
}
