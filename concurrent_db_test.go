package bulkdel

import (
	"sync/atomic"
	"testing"
	"time"
)

// newTwoTableDB builds R and S (n rows, 3 indexes each) on a 6-device
// array: the global round-robin cursor places R's indexes on devices 1..3
// and S's on 4..6, so the two statements' index passes touch disjoint
// arms and only share device 0 (heap, WAL, scratch).
func newTwoTableDB(t *testing.T, n int) (*DB, *Table, *Table) {
	t.Helper()
	db, err := Open(Options{Devices: 6})
	if err != nil {
		t.Fatal(err)
	}
	var tbls [2]*Table
	for ti, name := range []string{"R", "S"} {
		tbl, err := db.CreateTable(name, 3, 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := tbl.Insert(int64(i), int64(3*i), int64(i%97)); err != nil {
				t.Fatal(err)
			}
		}
		for _, ix := range []IndexOptions{
			{Name: "IA", Field: 0, Unique: true},
			{Name: "IB", Field: 1},
			{Name: "IC", Field: 2},
		} {
			if err := tbl.CreateIndex(ix); err != nil {
				t.Fatal(err)
			}
		}
		tbls[ti] = tbl
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	return db, tbls[0], tbls[1]
}

// TestConcurrentStatementsOverlap is the PR's acceptance test: two bulk
// deletes on independent tables, run through RunConcurrent, must finish in
// less combined I/O wall-clock than executing them serially — i.e. the
// offline schedules genuinely overlap on the array. A serially-built twin
// provides the baseline.
func TestConcurrentStatementsOverlap(t *testing.T) {
	const rows, kills = 1200, 300
	opts := BulkOptions{Method: SortMerge, Concurrent: true, Parallel: 2}

	// Serial baseline: same build, same deletes, one after the other.
	_, sr, ss := newTwoTableDB(t, rows)
	var serial time.Duration
	for _, tbl := range []*Table{sr, ss} {
		res, err := tbl.BulkDelete(0, victims(rows, kills, 7), opts)
		if err != nil {
			t.Fatal(err)
		}
		serial += res.Elapsed
	}

	db, r, s := newTwoTableDB(t, rows)
	conc, err := db.RunConcurrent(
		func() error { _, err := r.BulkDelete(0, victims(rows, kills, 7), opts); return err },
		func() error { _, err := s.BulkDelete(0, victims(rows, kills, 7), opts); return err },
	)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Statements != 2 {
		t.Fatalf("Statements = %d", conc.Statements)
	}
	if conc.Makespan >= conc.SerialEquivalent {
		t.Fatalf("no device overlap: makespan %v vs serial-equivalent %v",
			conc.Makespan, conc.SerialEquivalent)
	}
	if conc.Makespan >= serial {
		t.Fatalf("batch makespan %v not under the serial baseline %v",
			conc.Makespan, serial)
	}
	if conc.Overlap() <= 0 {
		t.Fatalf("Overlap() = %v", conc.Overlap())
	}
	t.Logf("makespan %v, serial-equivalent %v, serial twin %v",
		conc.Makespan, conc.SerialEquivalent, serial)

	// The overlap must not have cost correctness.
	for _, tbl := range []*Table{r, s} {
		if err := tbl.Check(); err != nil {
			t.Fatal(err)
		}
		n := int64(0)
		if err := tbl.Scan(func(RID, []int64) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != rows-kills {
			t.Fatalf("%d rows survive, want %d", n, rows-kills)
		}
	}
}

// TestConcurrentFKOppositeOrderNoDeadlock is the deadlock regression for
// the lock manager's ordered acquisition. Statement 1 deletes from the
// parent (its footprint is {orders, lines} via the cascade); statement 2
// deletes from the child. Issued in both textual orders, the batch must
// always complete — a wait-for cycle would hang it, which the watchdog
// turns into a failure.
func TestConcurrentFKOppositeOrderNoDeadlock(t *testing.T) {
	for _, flip := range []bool{false, true} {
		db, orders, lines := fkFixture(t, Cascade)

		// Disjoint victims keep the oracle simple: parents 0..49 cascade
		// into line IDs 0..149; the child statement kills line IDs
		// 600..749 (orders 200..249), which no cascade touches.
		parentVictims := make([]int64, 50)
		childVictims := make([]int64, 150)
		for i := range parentVictims {
			parentVictims[i] = int64(i)
		}
		for i := range childVictims {
			childVictims[i] = int64(600 + i)
		}
		opts := BulkOptions{Method: SortMerge, Concurrent: true}
		stmts := []func() error{
			func() error { _, err := orders.BulkDelete(0, parentVictims, opts); return err },
			func() error { _, err := lines.BulkDelete(1, childVictims, opts); return err },
		}
		if flip {
			stmts[0], stmts[1] = stmts[1], stmts[0]
		}

		type outcome struct {
			res *ConcurrentResult
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			res, err := db.RunConcurrent(stmts...)
			ch <- outcome{res, err}
		}()
		var out outcome
		select {
		case out = <-ch:
		case <-time.After(60 * time.Second):
			t.Fatalf("flip=%v: concurrent FK batch deadlocked", flip)
		}
		if out.err != nil {
			t.Fatalf("flip=%v: %v", flip, out.err)
		}

		for _, tbl := range []*Table{orders, lines} {
			if err := tbl.Check(); err != nil {
				t.Fatalf("flip=%v: %v", flip, err)
			}
		}
		counts := map[*Table]int64{}
		for _, tbl := range []*Table{orders, lines} {
			if err := tbl.Scan(func(RID, []int64) error { counts[tbl]++; return nil }); err != nil {
				t.Fatal(err)
			}
		}
		// 500 orders - 50 victims; 900 lines - 150 cascaded - 150 direct.
		if counts[orders] != 450 || counts[lines] != 600 {
			t.Fatalf("flip=%v: %d orders / %d lines survive, want 450/600",
				flip, counts[orders], counts[lines])
		}
	}
}

// TestReadPathsWaitForOfflineIndex is the regression for the read-side of
// the gate protocol: after a concurrent bulk delete's §3.1 early release,
// its non-unique secondary index passes keep rebuilding trees offline, and
// a reader admitted by the released table lock must wait on the index gate
// (updaters route through the side-file; reads cannot). The test stages the
// window directly: it takes a secondary gate offline, issues the reads, and
// asserts none of them returned before the gate came back online.
func TestReadPathsWaitForOfflineIndex(t *testing.T) {
	// Pin snapshot reads off: this test covers the classic gate-respecting
	// read paths. With MVCC on, Lookup/LookupRIDs intentionally do NOT wait
	// on gates — they either read trees no bulk pass is mutating (the
	// BeginDelete handshake guarantees it) or fall back to a heap scan.
	db, err := Open(Options{DisableSnapshotReads: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("T", 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range []IndexOptions{
		{Name: "IA", Field: 0, Unique: true},
		{Name: "IB", Field: 1},
	} {
		if err := tbl.CreateIndex(ix); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 50; i++ {
		if _, err := tbl.Insert(i, 3*i, i%7); err != nil {
			t.Fatal(err)
		}
	}
	ix := tbl.t.FindIndex("IB")

	// reopened is set (strictly) before BringOnline, so a read that
	// correctly waited on the gate must observe it as true.
	var reopened atomic.Bool
	stage := func() {
		reopened.Store(false)
		ix.Gate.TakeOffline()
		go func() {
			time.Sleep(20 * time.Millisecond)
			reopened.Store(true)
			ix.Gate.BringOnline()
		}()
	}

	stage()
	rows, err := tbl.Lookup(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.Load() {
		t.Fatal("Lookup traversed a still-offline index")
	}
	if len(rows) != 1 || rows[0][0] != 3 {
		t.Fatalf("Lookup(1, 9) = %v", rows)
	}

	stage()
	rids, err := tbl.LookupRIDs(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.Load() {
		t.Fatal("LookupRIDs traversed a still-offline index")
	}
	if len(rids) != 1 {
		t.Fatalf("LookupRIDs(1, 9) = %v", rids)
	}

	stage()
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
	if !reopened.Load() {
		t.Fatal("Check scanned a still-offline index")
	}
}
