module bulkdel

go 1.22
