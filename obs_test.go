package bulkdel

import (
	"strings"
	"testing"
)

// TestBulkDeleteObservability drives one bulk delete end to end and checks
// the whole observability surface: the trace, EXPLAIN ANALYZE, the stable
// JSON, and the engine-wide observer aggregation.
func TestBulkDeleteObservability(t *testing.T) {
	db, tbl := newBenchDB(t, 3000, Options{})
	victims := make([]int64, 0, 200)
	for v := int64(100); v < 300; v++ {
		victims = append(victims, v)
	}
	res, err := tbl.BulkDelete(0, victims, BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if res.Trace == nil {
		t.Fatal("BulkResult.Trace is nil")
	}
	for _, phase := range []string{"collect-rids", "access-pass", "heap-pass", "index-pass", "wal-commit"} {
		if res.Trace.Find(phase) == nil {
			t.Errorf("trace lacks phase %q:\n%s", phase, res.Trace.Format())
		}
	}
	if d := res.Trace.Find("heap-pass").Delta(); d.Elapsed <= 0 {
		t.Errorf("heap-pass has no elapsed time: %+v", d)
	}
	if root := res.Trace.Root(); root.IO.WALBytes == 0 {
		t.Errorf("logged statement recorded no WAL bytes")
	}

	out := res.ExplainAnalyze()
	for _, want := range []string{
		"EXPLAIN ANALYZE  method=",
		"planner estimates:",
		"(*=chosen)",
		"↳ actual: deleted=200 victims=200",
		"(estimated=",
		"structure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze missing %q:\n%s", want, out)
		}
	}

	j1, err := res.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := res.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("MetricsJSON not stable")
	}
	for _, want := range []string{`"method"`, `"estimates"`, `"structures"`, `"trace"`, `"wal_bytes"`} {
		if !strings.Contains(string(j1), want) {
			t.Errorf("MetricsJSON missing %q", want)
		}
	}

	obs := db.Observer()
	if obs.LastTrace() != res.Trace {
		t.Errorf("observer did not keep the statement trace")
	}
	if got := obs.Registry().Counter("statements_traced").Value(); got != 1 {
		t.Errorf("statements_traced = %d, want 1", got)
	}
	if got := obs.Registry().Counter("pages_written").Value(); got == 0 {
		t.Errorf("pages_written = 0, want > 0")
	}
}

// TestMetricsSnapshotAndPoolStats checks DB.Metrics diffing and the
// PoolStats/ResetPoolStats symmetry with DiskStats/ResetDiskStats.
func TestMetricsSnapshotAndPoolStats(t *testing.T) {
	db, tbl := newBenchDB(t, 2000, Options{})
	before := db.Metrics()
	if _, err := tbl.BulkDelete(0, []int64{10, 20, 30, 40}, BulkOptions{}); err != nil {
		t.Fatal(err)
	}
	d := db.Metrics().Sub(before)
	if d.Elapsed <= 0 || d.Reads == 0 && d.Writes == 0 {
		t.Errorf("metrics diff shows no work: %+v", d)
	}
	if d.WALBytes == 0 {
		t.Errorf("metrics diff shows no WAL bytes for a logged delete")
	}

	if db.PoolStats().Hits == 0 {
		t.Errorf("pool recorded no hits")
	}
	db.ResetPoolStats()
	if s := db.PoolStats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("ResetPoolStats left %+v", s)
	}
	db.ResetDiskStats()
	if s := db.DiskStats(); s.Reads != 0 {
		t.Errorf("ResetDiskStats left %+v", s)
	}
}

// TestObserverOption checks that a caller-supplied observer receives the
// traces (several statements accumulate).
func TestObserverOption(t *testing.T) {
	shared := NewObserver()
	db, tbl := newBenchDB(t, 2000, Options{Observer: shared})
	if db.Observer() != shared {
		t.Fatal("DB did not adopt the supplied observer")
	}
	for i := 0; i < 3; i++ {
		lo := int64(100 * (i + 1))
		if _, err := tbl.BulkDelete(0, []int64{lo, lo + 1, lo + 2}, BulkOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := shared.Registry().Counter("statements_traced").Value(); got != 3 {
		t.Errorf("statements_traced = %d, want 3", got)
	}
	if got := len(shared.Traces()); got != 3 {
		t.Errorf("kept %d traces, want 3", got)
	}
}

// TestUnloggedTraceHasNoWAL: with the WAL disabled the trace still forms,
// without materialization phases and with zero WAL bytes.
func TestUnloggedTraceHasNoWAL(t *testing.T) {
	_, tbl := newBenchDB(t, 2000, Options{DisableWAL: true})
	res, err := tbl.BulkDelete(0, []int64{5, 6, 7, 8}, BulkOptions{Method: SortMerge})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("trace missing")
	}
	if res.Trace.Root().IO.WALBytes != 0 {
		t.Errorf("unlogged statement charged WAL bytes")
	}
	if res.Trace.Find("materialize-victims") != nil {
		t.Errorf("unlogged statement materialized victims")
	}
	if res.Trace.Find("heap-pass") == nil || res.Trace.Find("access-pass") == nil {
		t.Errorf("phases missing:\n%s", res.Trace.Format())
	}
}
