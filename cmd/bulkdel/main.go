// Command bulkdel is a small interactive shell around the bulkdel engine:
// create tables and indexes, load synthetic rows, run bulk deletes with any
// of the paper's plans (or the traditional and drop-&-create baselines),
// explain plans, inspect the simulated clock, and exercise crash recovery.
//
// Usage:
//
//	bulkdel                             # interactive (reads commands from stdin)
//	bulkdel -f demo.bd                  # run a script
//	bulkdel -f demo.bd -explain-analyze # annotate every bulk delete with actuals
//	bulkdel -f demo.bd -metrics-json    # emit every bulk delete's metrics as JSON
//	bulkdel -f demo.bd -faults crash@40 # crash at the first delete's 40th page I/O
//	bulkdel -f demo.bd -devices 4 -parallel 4
//	                                    # 4-spindle disk array, indexes and heap
//	                                    # partitions placed by the device policy,
//	                                    # independent ⋈̸ passes overlap
//	bulkdel -f demo.bd -devices 4 -layout
//	                                    # afterwards, print the per-device file
//	                                    # layout (also: the `layout` command)
//
// Commands (type `help` in the shell):
//
//	create table <name> <fields> <recsize>
//	create index <table> <ixname> <field> [unique] [clustered] [keylen <n>]
//	load <table> <rows>
//	insert <table> <v0> [v1 ...]
//	delete <table> <field> <values|lo..hi> [method sort|hash|partition|auto]
//	delete <table> <field> <values|lo..hi> traditional [sorted]
//	delete <table> <field> <values|lo..hi> dropcreate
//	lookup <table> <field> <value>
//	count <table> | check <table> | explain <table> <field> [method]
//	estimate <table> <field> <victims>
//	clock | stats | metrics | layout | inspect | flush | crash | recover | help | quit
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bulkdel"
	"bulkdel/internal/sim"
)

type shell struct {
	db             *bulkdel.DB
	disk           *sim.Disk
	out            *bufio.Writer
	explainAnalyze bool
	metricsJSON    bool
	progress       bool           // live Inspect view while a bulk delete runs
	parallel       int            // worker cap for every bulk delete
	timeout        time.Duration  // statement deadline for every bulk delete
	faultPlan      *sim.FaultPlan // armed for the next delete statement
}

// watchProgress prints the live engine view (in-flight statements with
// phase and progress counters, the lock graph, the WAL queue) to stderr
// every 100ms until the returned stop function is called. A no-op unless
// -progress was given.
func (s *shell) watchProgress() (stop func()) {
	if !s.progress {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprint(os.Stderr, "---\n"+s.db.Inspect().String())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func main() {
	script := flag.String("f", "", "script file (default: interactive stdin)")
	explainAnalyze := flag.Bool("explain-analyze", false,
		"after every bulk delete, print the plan tree annotated with measured actuals")
	metricsJSON := flag.Bool("metrics-json", false,
		"after every bulk delete, print its metrics (estimates, per-structure I/O, phase trace) as JSON")
	faults := flag.String("faults", "",
		"fault spec armed for the first delete statement: crash@K, crash@K:tear=N, read@N, write@N\n(ordinals count the statement's page I/Os; after the crash, run `crash` then `recover`)")
	devices := flag.Int("devices", 0,
		"simulated disk array width: indexes are placed round-robin on devices 1..N\n(device 0 holds the catalog, WAL, heap, and scratch files; 0 = single spindle)")
	parallel := flag.Int("parallel", 0,
		"worker cap for every bulk delete's remaining-index passes (0/1 = serial; needs -devices)")
	timeout := flag.Duration("timeout", 0,
		"real-time deadline for every bulk delete statement (e.g. 50ms); an expired\nstatement aborts to a consistent state via the online recovery replay (0 = none)")
	layout := flag.Bool("layout", false,
		"print the per-device file layout (device, files, pages, busy-time share) when the session ends")
	progress := flag.Bool("progress", false,
		"while a bulk delete runs, print the live engine view (phase, pages, lock graph) to stderr\n(also: the `inspect` command for a one-shot snapshot)")
	flag.Parse()

	if *parallel > 1 && *devices <= 1 {
		fmt.Fprintf(os.Stderr,
			"bulkdel: warning: -parallel %d has no effect on a single spindle; "+
				"every statement will run serial (workers=1). Add -devices N to spread the indexes.\n",
			*parallel)
	}

	in := os.Stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bulkdel:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	db, err := bulkdel.Open(bulkdel.Options{Devices: *devices})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bulkdel:", err)
		os.Exit(1)
	}
	sh := &shell{db: db, out: bufio.NewWriter(os.Stdout),
		explainAnalyze: *explainAnalyze, metricsJSON: *metricsJSON,
		progress: *progress, parallel: *parallel, timeout: *timeout}
	if *faults != "" {
		plan, err := sim.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bulkdel:", err)
			os.Exit(1)
		}
		sh.faultPlan = plan
	}
	defer sh.out.Flush()
	if *layout {
		// Registered after the Flush defer so it runs first (LIFO):
		// print the final layout, then the earlier defer flushes it.
		defer sh.printLayout()
	}

	interactive := *script == "" && isTTY()
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if interactive {
			fmt.Fprint(sh.out, "bulkdel> ")
			sh.out.Flush()
		}
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := sh.exec(line); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		}
		sh.out.Flush()
	}
}

func isTTY() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func (s *shell) exec(line string) error {
	f := strings.Fields(line)
	switch f[0] {
	case "help":
		s.help()
		return nil
	case "create":
		return s.create(f[1:])
	case "load":
		return s.load(f[1:])
	case "insert":
		return s.insert(f[1:])
	case "delete":
		return s.delete(f[1:])
	case "update":
		return s.update(f[1:])
	case "lookup":
		return s.lookup(f[1:])
	case "count":
		tbl, err := s.table(f[1:])
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%d\n", tbl.Count())
		return nil
	case "check":
		tbl, err := s.table(f[1:])
		if err != nil {
			return err
		}
		if err := tbl.Check(); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "ok: heap and all indexes consistent")
		return nil
	case "explain":
		return s.explain(f[1:])
	case "estimate":
		return s.estimate(f[1:])
	case "clock":
		fmt.Fprintf(s.out, "simulated time: %v\n", s.db.Clock())
		return nil
	case "stats":
		st := s.db.DiskStats()
		fmt.Fprintf(s.out, "reads=%d writes=%d random=%d near=%d sequential=%d chained-runs=%d\n",
			st.Reads, st.Writes, st.RandomOps, st.NearOps, st.SeqOps, st.ChainedRuns)
		return nil
	case "metrics":
		snap := s.db.Metrics()
		ps := s.db.PoolStats()
		fmt.Fprintf(s.out, "clock=%v reads=%d writes=%d seeks=%d pool-hits=%d pool-misses=%d wal=%d bytes\n",
			snap.Clock, snap.Disk.Reads, snap.Disk.Writes, snap.Disk.RandomOps,
			ps.Hits, ps.Misses, snap.WALBytes)
		j, err := s.db.Observer().Registry().JSON()
		if err != nil {
			return err
		}
		s.out.Write(j)
		fmt.Fprintln(s.out)
		s.printLayout()
		return nil
	case "layout":
		s.printLayout()
		return nil
	case "inspect":
		fmt.Fprint(s.out, s.db.Inspect().String())
		return nil
	case "flush":
		return s.db.Flush()
	case "crash":
		s.disk = s.db.SimulateCrash()
		// The reboot clears any tripped fault plan: the replacement
		// machine's I/O works.
		s.disk.SetFaultPlan(nil)
		fmt.Fprintln(s.out, "crashed: volatile state discarded (use `recover`)")
		return nil
	case "recover":
		if s.disk == nil {
			return fmt.Errorf("nothing to recover from (use `crash` first)")
		}
		db, rep, err := bulkdel.Recover(s.disk, bulkdel.Options{})
		if err != nil {
			return err
		}
		s.db, s.disk = db, nil
		if rep.BulkInProgress {
			fmt.Fprintf(s.out, "recovered: rolled forward a bulk delete on %s (%d records, %d structures were already durable)\n",
				rep.Table, rep.RolledForward, rep.StructuresSkipped)
		} else {
			fmt.Fprintln(s.out, "recovered: no bulk delete was in progress")
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (try `help`)", f[0])
	}
}

func (s *shell) help() {
	fmt.Fprint(s.out, `commands:
  create table <name> <fields> <recsize>
  create index <table> <ixname> <field> [unique] [clustered] [keylen <n>]
  load <table> <rows>                      synthetic rows: field j of row i = (j+1)*i
  insert <table> <v0> [v1 ...]
  delete <table> <field> <values|lo..hi> [method sort|hash|partition|auto]
  delete <table> <field> <values|lo..hi> traditional [sorted]
  delete <table> <field> <values|lo..hi> dropcreate
  update <table> <predfield> <values|lo..hi> <setfield> <delta>
  lookup <table> <field> <value>
  count <table> | check <table>
  explain <table> <field> [sort|hash|partition]
  estimate <table> <field> <victims>
  clock | stats | metrics | layout | inspect | flush | crash | recover | quit
`)
}

// printLayout renders the per-device file layout table: which files,
// pages, and bytes each device holds, what share of the array's
// accumulated busy time it accounts for, and each file's byte size.
func (s *shell) printLayout() {
	rows := s.db.Layout()
	var total time.Duration
	for _, r := range rows {
		total += r.Busy
	}
	fmt.Fprintf(s.out, "%-8s %6s %8s %10s %14s %6s\n", "device", "files", "pages", "bytes", "busy", "share")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.Busy) / float64(total)
		}
		name := fmt.Sprintf("%d", r.Device)
		if r.Device == 0 {
			name = "0 (sys)"
		}
		fmt.Fprintf(s.out, "%-8s %6d %8d %10s %14v %5.1f%%\n",
			name, r.Files, r.Pages, fmtBytes(r.Bytes), r.Busy, share)
		for _, f := range r.ByFile {
			fmt.Fprintf(s.out, "  file %-4d %10d %10s\n", f.File, f.Pages, fmtBytes(f.Bytes))
		}
	}
}

// fmtBytes renders a byte count with a binary unit suffix (pages are 4 KiB,
// so sub-KiB sizes never occur).
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func (s *shell) table(args []string) (*bulkdel.Table, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("table name required")
	}
	tbl := s.db.Table(args[0])
	if tbl == nil {
		return nil, fmt.Errorf("no table %q", args[0])
	}
	return tbl, nil
}

func (s *shell) create(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("create table|index ...")
	}
	switch args[0] {
	case "table":
		if len(args) != 4 {
			return fmt.Errorf("create table <name> <fields> <recsize>")
		}
		fields, err1 := strconv.Atoi(args[2])
		size, err2 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("fields and recsize must be integers")
		}
		if _, err := s.db.CreateTable(args[1], fields, size); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "table %s created\n", args[1])
		return nil
	case "index":
		if len(args) < 4 {
			return fmt.Errorf("create index <table> <ixname> <field> [unique] [clustered] [keylen <n>]")
		}
		tbl, err := s.table(args[1:])
		if err != nil {
			return err
		}
		field, err := strconv.Atoi(args[3])
		if err != nil {
			return fmt.Errorf("field must be an integer")
		}
		opts := bulkdel.IndexOptions{Name: args[2], Field: field}
		rest := args[4:]
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case "unique":
				opts.Unique = true
			case "clustered":
				opts.Clustered = true
			case "keylen":
				if i+1 >= len(rest) {
					return fmt.Errorf("keylen needs a value")
				}
				n, err := strconv.Atoi(rest[i+1])
				if err != nil {
					return fmt.Errorf("keylen must be an integer")
				}
				opts.KeyLen = n
				i++
			default:
				return fmt.Errorf("unknown index option %q", rest[i])
			}
		}
		if err := tbl.CreateIndex(opts); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "index %s created (height %d)\n", opts.Name, tbl.IndexHeight(opts.Name))
		return nil
	default:
		return fmt.Errorf("create table|index ...")
	}
}

func (s *shell) load(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("load <table> <rows>")
	}
	tbl, err := s.table(args)
	if err != nil {
		return err
	}
	n, err := strconv.Atoi(args[1])
	if err != nil {
		return fmt.Errorf("rows must be an integer")
	}
	fields := tbl.NumFields()
	vals := make([]int64, fields)
	base := tbl.Count()
	for i := 0; i < n; i++ {
		for j := range vals {
			vals[j] = int64(j+1) * (base + int64(i))
		}
		if _, err := tbl.Insert(vals...); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	fmt.Fprintf(s.out, "loaded %d rows (count now %d)\n", n, tbl.Count())
	return nil
}

func (s *shell) insert(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("insert <table> <v0> [v1 ...]")
	}
	tbl, err := s.table(args)
	if err != nil {
		return err
	}
	vals := make([]int64, 0, len(args)-1)
	for _, a := range args[1:] {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return fmt.Errorf("value %q: %w", a, err)
		}
		vals = append(vals, v)
	}
	rid, err := tbl.Insert(vals...)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "inserted at rid %s\n", rid)
	return nil
}

// parseValues accepts "1,2,3" or "lo..hi" (inclusive).
func parseValues(s string) ([]int64, error) {
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		a, err1 := strconv.ParseInt(lo, 10, 64)
		b, err2 := strconv.ParseInt(hi, 10, 64)
		if err1 != nil || err2 != nil || b < a {
			return nil, fmt.Errorf("bad range %q", s)
		}
		out := make([]int64, 0, b-a+1)
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func methodByName(name string) (bulkdel.Method, error) {
	switch name {
	case "sort", "sortmerge", "sort/merge":
		return bulkdel.SortMerge, nil
	case "hash":
		return bulkdel.Hash, nil
	case "partition", "hashpartition":
		return bulkdel.HashPartition, nil
	case "auto", "":
		return bulkdel.Auto, nil
	default:
		return bulkdel.Auto, fmt.Errorf("unknown method %q", name)
	}
}

func (s *shell) delete(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("delete <table> <field> <values|lo..hi> [method m|traditional [sorted]|dropcreate]")
	}
	if s.faultPlan != nil {
		// -faults arms the plan for the first delete; ordinals in the
		// spec count this statement's page I/Os from here.
		s.db.Disk().SetFaultPlan(s.faultPlan)
		s.faultPlan = nil
	}
	tbl, err := s.table(args)
	if err != nil {
		return err
	}
	field, err := strconv.Atoi(args[1])
	if err != nil {
		return fmt.Errorf("field must be an integer")
	}
	values, err := parseValues(args[2])
	if err != nil {
		return err
	}
	mode := ""
	if len(args) > 3 {
		mode = args[3]
	}
	switch mode {
	case "traditional":
		sorted := len(args) > 4 && args[4] == "sorted"
		n, err := tbl.DeleteTraditional(field, values, sorted)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "traditional delete removed %d records in %v (simulated total)\n", n, s.db.Clock())
		return nil
	case "dropcreate":
		n, err := tbl.DeleteDropCreate(field, values)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "drop&create delete removed %d records\n", n)
		return nil
	case "", "method":
		name := ""
		if mode == "method" {
			if len(args) < 5 {
				return fmt.Errorf("delete ... method <sort|hash|partition|auto>")
			}
			name = args[4]
		}
		m, err := methodByName(name)
		if err != nil {
			return err
		}
		stop := s.watchProgress()
		res, err := tbl.BulkDelete(field, values, bulkdel.BulkOptions{
			Method: m, Parallel: s.parallel, Timeout: s.timeout})
		stop()
		if err != nil {
			if errors.Is(err, bulkdel.ErrCancelled) {
				fmt.Fprintf(s.out, "bulk delete cancelled (deadline %v): aborted to a consistent state "+
					"via online roll-forward; run `check` to confirm\n", s.timeout)
				return nil
			}
			return err
		}
		if res.Workers > 1 {
			fmt.Fprintf(s.out, "bulk delete (%v) removed %d of %d victims: makespan %v with %d workers (%v serial-equivalent)\n",
				res.Method, res.Deleted, res.Victims, res.Makespan, res.Workers, res.Elapsed)
		} else {
			fmt.Fprintf(s.out, "bulk delete (%v) removed %d of %d victims in %v simulated\n",
				res.Method, res.Deleted, res.Victims, res.Elapsed)
		}
		if s.explainAnalyze {
			fmt.Fprint(s.out, res.ExplainAnalyze())
		}
		if s.metricsJSON {
			j, err := res.MetricsJSON()
			if err != nil {
				return err
			}
			s.out.Write(j)
			fmt.Fprintln(s.out)
		}
		return nil
	default:
		return fmt.Errorf("unknown delete mode %q", mode)
	}
}

// update runs a bulk update: add <delta> to <setfield> of every row whose
// <predfield> is in the victim list.
func (s *shell) update(args []string) error {
	if len(args) != 5 {
		return fmt.Errorf("update <table> <predfield> <values|lo..hi> <setfield> <delta>")
	}
	tbl, err := s.table(args)
	if err != nil {
		return err
	}
	predField, err1 := strconv.Atoi(args[1])
	setField, err2 := strconv.Atoi(args[3])
	delta, err3 := strconv.ParseInt(args[4], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return fmt.Errorf("fields and delta must be integers")
	}
	values, err := parseValues(args[2])
	if err != nil {
		return err
	}
	res, err := tbl.BulkUpdate(predField, values, setField,
		func(v int64) int64 { return v + delta }, bulkdel.BulkOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "bulk update changed %d records (%d index entries moved) in %v simulated\n",
		res.Updated, res.EntriesMoved, res.Elapsed)
	return nil
}

func (s *shell) lookup(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("lookup <table> <field> <value>")
	}
	tbl, err := s.table(args)
	if err != nil {
		return err
	}
	field, err1 := strconv.Atoi(args[1])
	v, err2 := strconv.ParseInt(args[2], 10, 64)
	if err1 != nil || err2 != nil {
		return fmt.Errorf("field and value must be integers")
	}
	rows, err := tbl.Lookup(field, v)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(s.out, "%v\n", r)
	}
	fmt.Fprintf(s.out, "(%d rows)\n", len(rows))
	return nil
}

func (s *shell) explain(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("explain <table> <field> [method]")
	}
	tbl, err := s.table(args)
	if err != nil {
		return err
	}
	field, err := strconv.Atoi(args[1])
	if err != nil {
		return fmt.Errorf("field must be an integer")
	}
	name := ""
	if len(args) > 2 {
		name = args[2]
	}
	m, err := methodByName(name)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, tbl.Explain(field, m, 0))
	return nil
}

func (s *shell) estimate(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("estimate <table> <field> <victims>")
	}
	tbl, err := s.table(args)
	if err != nil {
		return err
	}
	field, err1 := strconv.Atoi(args[1])
	victims, err2 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("field and victims must be integers")
	}
	for name, d := range tbl.EstimateMethods(field, victims, 0) {
		fmt.Fprintf(s.out, "%-24s %v\n", name, d)
	}
	return nil
}
