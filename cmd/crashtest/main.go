// Command crashtest sweeps a bulk delete through every possible crash
// point: it runs the statement once to count its page I/Os, then for each
// ordinal k re-runs it on a fresh database with a simulated power failure
// at exactly the kth I/O, recovers, and checks that the heap and every
// index are consistent and that the victim set was deleted atomically.
//
// Usage:
//
//	crashtest                         # sweep all ordinals, all three methods
//	crashtest -method sort            # one method
//	crashtest -at 37 -v               # reproduce a single ordinal
//	crashtest -from 10 -to 60 -stride 5
//	crashtest -tear 100 -tear-wal     # additionally tear crashing WAL writes
//	crashtest -rebalance              # crash an online device rebalancing
//	crashtest -cancel                 # cancel (not crash) at every ordinal
//	crashtest -reader                 # crash/cancel under a concurrent MVCC snapshot reader
//	crashtest -metrics-json           # dump the accumulated fault counters
//
// The sweep is deterministic: the same flags visit the same I/Os and
// produce the same digest, so a failing ordinal reproduces exactly with
// `crashtest -at k`. Exit status is 1 if any ordinal fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"bulkdel"
	"bulkdel/internal/crashtest"
	"bulkdel/internal/obs"
)

func main() {
	rows := flag.Int("rows", 0, "table rows (default 48)")
	victims := flag.Int("victims", 0, "victim count (default rows/3)")
	indexes := flag.Int("indexes", 0, "indexes on the table, 1..3 (default 3)")
	method := flag.String("method", "all", "join method: sort, hash, partition, or all")
	at := flag.Int("at", 0, "run a single ordinal instead of sweeping")
	from := flag.Int("from", 0, "first swept ordinal (default 1)")
	to := flag.Int("to", 0, "last swept ordinal (default: the statement's I/O count)")
	stride := flag.Int("stride", 1, "sweep every Nth ordinal")
	tear := flag.Int("tear", 0, "tear the crashing write, persisting only this byte prefix")
	tearWAL := flag.Bool("tear-wal", false, "restrict tearing to the WAL file")
	seed := flag.Int64("seed", 1, "victim-selection seed")
	checkpointRows := flag.Int("checkpoint-rows", 0, "deletions between WAL checkpoints (default 8)")
	memory := flag.Int("memory", 0, "sort/hash budget in bytes (default 512)")
	buffer := flag.Int("buffer", 0, "buffer-pool budget in bytes (default 24 pages)")
	devices := flag.Int("devices", 0, "simulated disk array width (data files placed by the device policy; 0 = single spindle)")
	parallel := flag.Int("parallel", 0, "worker cap for the remaining-index passes (makes the crash point nondeterministic; invariants still checked)")
	concurrent := flag.Bool("concurrent", false, "two-table scenario: crash a concurrent two-statement batch (invariants only, no digest)")
	rebalance := flag.Bool("rebalance", false, "rebalance scenario: crash an online device rebalancing instead of a bulk delete")
	lsmMode := flag.Bool("lsm", false, "LSM scenario: crash an LSM range delete + flush + compaction sequence instead of a bulk delete")
	cancelMode := flag.Bool("cancel", false, "cancel scenario: cooperatively cancel at every ordinal and compare the online abort against crash+recover")
	reader := flag.Bool("reader", false, "attach a concurrent MVCC snapshot reader to the crash (or, with -cancel, the cancel) sweep; the pinned view must stay repeatable throughout")
	verifyDigest := flag.Bool("verify-digest", true, "re-run deterministic sweeps and require identical digests")
	verbose := flag.Bool("v", false, "print every ordinal's outcome")
	metricsJSON := flag.Bool("metrics-json", false, "print the accumulated metrics registry as JSON")
	eventsPath := flag.String("events", "", "write the statement event log (all scenarios, JSONL) to this file")
	flag.Parse()

	methods := map[string]bulkdel.Method{
		"sort": bulkdel.SortMerge, "hash": bulkdel.Hash, "partition": bulkdel.HashPartition,
	}
	var run []struct {
		name string
		m    bulkdel.Method
	}
	if *method == "all" {
		for _, n := range []string{"sort", "hash", "partition"} {
			run = append(run, struct {
				name string
				m    bulkdel.Method
			}{n, methods[n]})
		}
	} else if m, ok := methods[*method]; ok {
		run = append(run, struct {
			name string
			m    bulkdel.Method
		}{*method, m})
	} else {
		fmt.Fprintf(os.Stderr, "crashtest: unknown method %q (sort, hash, partition, all)\n", *method)
		os.Exit(2)
	}

	observer := obs.NewObserver()
	failed := 0
	for _, r := range run {
		cfg := crashtest.Config{
			Rows: *rows, Victims: *victims, Indexes: *indexes, Method: r.m,
			CheckpointRows: *checkpointRows, Memory: *memory, BufferBytes: *buffer,
			Seed: *seed, From: *from, To: *to, Stride: *stride,
			TearBytes: *tear, TearWALOnly: *tearWAL,
			Devices: *devices, Parallel: *parallel,
			Observer: observer,
		}
		if *concurrent {
			failed += runConcurrent(r.name, cfg, *at, *verbose)
			continue
		}
		if *rebalance {
			failed += runRebalance(cfg, *at, *verbose, *verifyDigest)
			break // the rebalance scenario has no join method to vary
		}
		if *lsmMode {
			failed += runLSM(cfg, *at, *verbose, *verifyDigest)
			break // the LSM backend has no join method to vary
		}
		if *reader {
			failed += runReader(r.name, cfg, *cancelMode, *verbose)
			continue
		}
		if *cancelMode {
			failed += runCancel(r.name, cfg, *verbose)
			continue
		}
		if *at > 0 {
			res, err := crashtest.RunOrdinal(cfg, *at)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crashtest:", err)
				os.Exit(2)
			}
			printOrdinal(r.name, res)
			if res.Err != "" {
				failed++
			}
			continue
		}
		sw, err := crashtest.Sweep(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(2)
		}
		if *verbose {
			for _, res := range sw.Ordinals {
				printOrdinal(r.name, res)
			}
		} else {
			for _, res := range sw.Failures() {
				printOrdinal(r.name, res)
			}
		}
		fmt.Printf("%-9s %d I/Os, swept %d ordinals, %d failed, digest %s\n",
			r.name+":", sw.TotalIOs, sw.Ran, sw.Failed, sw.Digest())
		failed += sw.Failed
		// A deterministic configuration (serial workers or a single
		// device) must reproduce its digest exactly on a second sweep.
		if *verifyDigest && cfg.Deterministic() {
			sw2, err := crashtest.Sweep(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crashtest:", err)
				os.Exit(2)
			}
			if sw2.Digest() != sw.Digest() {
				fmt.Fprintf(os.Stderr, "crashtest: %s sweep is nondeterministic: digest %s then %s\n",
					r.name, sw.Digest(), sw2.Digest())
				failed++
			}
		}
	}

	if *metricsJSON {
		j, err := observer.Registry().JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(2)
		}
		os.Stdout.Write(j)
		fmt.Println()
	}
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err == nil {
			err = observer.Events().WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(2)
		}
		fmt.Printf("events: wrote %s\n", *eventsPath)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "crashtest: %d ordinal(s) failed\n", failed)
		os.Exit(1)
	}
}

// runRebalance sweeps (or, with at > 0, reproduces one ordinal of) the
// online-rebalancing crash scenario and returns the number of failures.
func runRebalance(cfg crashtest.Config, at int, verbose, verifyDigest bool) int {
	if at > 0 {
		res, err := crashtest.RunRebalanceOrdinal(cfg, at)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(2)
		}
		printRebalanceOrdinal(res)
		if res.Err != "" {
			return 1
		}
		return 0
	}
	sw, err := crashtest.RebalanceSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest:", err)
		os.Exit(2)
	}
	if verbose {
		for _, res := range sw.Ordinals {
			printRebalanceOrdinal(res)
		}
	} else {
		for _, res := range sw.Failures() {
			printRebalanceOrdinal(res)
		}
	}
	fmt.Printf("rebalance: %d I/Os, swept %d ordinals, %d failed, digest %s\n",
		sw.TotalIOs, sw.Ran, sw.Failed, sw.Digest())
	failed := sw.Failed
	if verifyDigest { // the rebalancer is single-threaded: always deterministic
		sw2, err := crashtest.RebalanceSweep(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(2)
		}
		if sw2.Digest() != sw.Digest() {
			fmt.Fprintf(os.Stderr, "crashtest: rebalance sweep is nondeterministic: digest %s then %s\n",
				sw.Digest(), sw2.Digest())
			failed++
		}
	}
	return failed
}

func printRebalanceOrdinal(r crashtest.RebalanceOrdinalResult) {
	status := "ok"
	if r.Err != "" {
		status = "FAIL " + r.Err
	}
	fmt.Printf("rebalance: io=%-4d crash=%-5v replayed=%-2d completed=%-2d survivors=%-3d clock=%dus %s\n",
		r.Ordinal, r.CrashFired, r.MovesReplayed, r.MovesCompleted, r.Survivors, r.ClockUS, status)
}

// runLSM sweeps (or, with at > 0, reproduces one ordinal of) the LSM
// range-delete/flush/compaction crash scenario and returns the number of
// failed ordinals.
func runLSM(cfg crashtest.Config, at int, verbose, verifyDigest bool) int {
	if at > 0 {
		res, err := crashtest.RunLSMOrdinal(cfg, at)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(2)
		}
		printLSMOrdinal(res)
		if res.Err != "" {
			return 1
		}
		return 0
	}
	sw, err := crashtest.LSMSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest:", err)
		os.Exit(2)
	}
	if verbose {
		for _, res := range sw.Ordinals {
			printLSMOrdinal(res)
		}
	} else {
		for _, res := range sw.Failures() {
			printLSMOrdinal(res)
		}
	}
	fmt.Printf("lsm: %d I/Os, swept %d ordinals, %d failed, digest %s\n",
		sw.TotalIOs, sw.Ran, sw.Failed, sw.Digest())
	failed := sw.Failed
	if verifyDigest { // the LSM write path is single-threaded: always deterministic
		sw2, err := crashtest.LSMSweep(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(2)
		}
		if sw2.Digest() != sw.Digest() {
			fmt.Fprintf(os.Stderr, "crashtest: lsm sweep is nondeterministic: digest %s then %s\n",
				sw.Digest(), sw2.Digest())
			failed++
		}
	}
	return failed
}

func printLSMOrdinal(r crashtest.LSMOrdinalResult) {
	status := "ok"
	if r.Err != "" {
		status = "FAIL " + r.Err
	}
	fmt.Printf("lsm: io=%-4d crash=%-5v replayed=%-3d range-survived=%-5v survivors=%-3d clock=%dus %s\n",
		r.Ordinal, r.CrashFired, r.Replayed, r.RangeSurvived, r.Survivors, r.ClockUS, status)
}

// runCancel sweeps the cooperative-cancellation scenario: at every ordinal
// the statement is cancelled (not crashed) at the kth I/O, aborted to
// consistency by the online recovery replay, and the resulting structures
// are digest-compared against both the completed delete and a real
// crash+recover at the same ordinal. Returns the number of failed ordinals.
func runCancel(method string, cfg crashtest.Config, verbose bool) int {
	sw, err := crashtest.CancelSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest:", err)
		os.Exit(2)
	}
	if verbose {
		for _, res := range sw.Ordinals {
			printCancelOrdinal(method, res)
		}
	} else {
		for _, res := range sw.Failures() {
			printCancelOrdinal(method, res)
		}
	}
	fmt.Printf("%-9s cancel sweep: %d I/Os, swept %d ordinals, %d cancelled, %d failed, reference %s\n",
		method+":", sw.TotalIOs, sw.Ran, sw.Cancelled, sw.Failed, sw.Reference)
	return sw.Failed
}

func printCancelOrdinal(method string, r crashtest.CancelOrdinalResult) {
	status := "ok"
	if r.Err != "" {
		status = "FAIL " + r.Err
	}
	fmt.Printf("%-9s io=%-4d cancelled=%-5v crash-comparable=%-5v survivors=%-3d digest=%s %s\n",
		method+":", r.Ordinal, r.CancelFired, r.CrashComparable, r.Survivors, r.Digest, status)
}

// runReader sweeps the crash (or cancel) scenario with a concurrent MVCC
// snapshot reader attached: a View pinned to the pre-delete epoch re-scans
// the table for the whole statement and must see it whole every time, and
// the table must settle at an atomic boundary. Returns the failure count.
func runReader(method string, cfg crashtest.Config, cancelMode, verbose bool) int {
	sweep, kind := crashtest.ReaderCrashSweep, "crash"
	if cancelMode {
		sweep, kind = crashtest.ReaderCancelSweep, "cancel"
	}
	sw, err := sweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest:", err)
		os.Exit(2)
	}
	if verbose {
		for _, res := range sw.Ordinals {
			printReaderOrdinal(method, res)
		}
	} else {
		for _, res := range sw.Failures() {
			printReaderOrdinal(method, res)
		}
	}
	fmt.Printf("%-9s reader %s sweep: %d I/Os, swept %d ordinals, %d failed\n",
		method+":", kind, sw.TotalIOs, sw.Ran, sw.Failed)
	return sw.Failed
}

func printReaderOrdinal(method string, r crashtest.ReaderOrdinalResult) {
	status := "ok"
	if r.Err != "" {
		status = "FAIL " + r.Err
	}
	fmt.Printf("%-9s io=%-4d fired=%-5v reader-scans=%-4d survivors=%-3d %s\n",
		method+":", r.Ordinal, r.Fired, r.ReaderScans, r.Survivors, status)
}

// runConcurrent sweeps (or, with at > 0, reproduces one ordinal of) the
// two-table concurrent scenario and returns the number of failed ordinals.
func runConcurrent(method string, cfg crashtest.Config, at int, verbose bool) int {
	if at > 0 {
		res, err := crashtest.RunConcurrentOrdinal(cfg, at)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(2)
		}
		printConcurrentOrdinal(method, res)
		if res.Err != "" {
			return 1
		}
		return 0
	}
	sw, err := crashtest.ConcurrentSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest:", err)
		os.Exit(2)
	}
	if verbose {
		for _, res := range sw.Ordinals {
			printConcurrentOrdinal(method, res)
		}
	} else {
		for _, res := range sw.Failures() {
			printConcurrentOrdinal(method, res)
		}
	}
	fmt.Printf("%-9s concurrent 2-table batch: %d I/Os, swept %d ordinals, %d failed\n",
		method+":", sw.TotalIOs, sw.Ran, sw.Failed)
	return sw.Failed
}

func printConcurrentOrdinal(method string, r crashtest.ConcurrentOrdinalResult) {
	status := "ok"
	if r.Err != "" {
		status = "FAIL " + r.Err
	}
	fmt.Printf("%-9s io=%-4d crash=%-5v statements=%d rolled-forward=%-3d %s\n",
		method+":", r.Ordinal, r.CrashFired, r.Statements, r.RolledForward, status)
}

func printOrdinal(method string, r crashtest.OrdinalResult) {
	status := "ok"
	if r.Err != "" {
		status = "FAIL " + r.Err
	}
	fmt.Printf("%-9s io=%-4d crash=%-5v bulk-in-wal=%-5v rolled-forward=%-3d survivors=%-3d clock=%dus %s\n",
		method+":", r.Ordinal, r.CrashFired, r.BulkInWAL, r.RolledForward, r.Survivors, r.ClockUS, status)
}
