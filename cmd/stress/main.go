// Command stress runs the concurrent workload generator against the
// DB-level lock manager: N worker goroutines issue randomized bulk
// deletes, indexed lookups, and inserts across M independent tables while
// a shadow model tracks what must survive. The run fails (exit 1) if any
// per-statement invariant, the final heap↔index consistency check, or the
// exact scan↔model comparison breaks.
//
// Usage:
//
//	stress                                  # defaults: 4 tables, 4 workers
//	stress -seed 3 -devices 4 -budget 4 -parallel 3 -concurrent
//	stress -workers 8 -ops 200 -rows 1000
//	stress -chaos-cancel 20 -chaos-deadline 20 -chaos-lockwait 25
//	stress -sql 30                          # 30% of ops via the SQL wire front door
//	stress -top                             # live in-flight/lock view
//	stress -bench-json BENCH_stress.json    # latency percentiles + waits
//	stress -trace trace.json                # open in chrome://tracing
//	stress -events events.jsonl             # statement event log
//
// SIGINT/SIGTERM interrupt the run gracefully: the workers finish their
// in-flight statement and drain, the final model verification still runs,
// and the report (including -bench-json/-trace/-events exports) is still
// produced. A second signal kills the process.
//
// The generator is deterministic in (seed, worker): a failing seed replays
// the same operation streams, so CI failures reproduce locally with the
// same flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bulkdel"
	"bulkdel/internal/workload"
)

// benchJSON is the stable wire form of a stress run for BENCH_stress.json:
// counts, batch timing (simulated makespan vs serial-equivalent and real
// wall time), per-statement latency percentiles, and the lock-wait share
// of the workers' combined wall time.
type benchJSON struct {
	Tables             int     `json:"tables"`
	Rows               int     `json:"rows"`
	Workers            int     `json:"workers"`
	Ops                int     `json:"ops"`
	Seed               int64   `json:"seed"`
	Devices            int     `json:"devices"`
	Parallel           int     `json:"parallel"`
	Budget             int     `json:"budget"`
	Concurrent         bool    `json:"concurrent"`
	BulkDeletes        int64   `json:"bulk_deletes"`
	RowsDeleted        int64   `json:"rows_deleted"`
	RowsInserted       int64   `json:"rows_inserted"`
	Lookups            int64   `json:"lookups"`
	MakespanUS         int64   `json:"makespan_us"`
	SerialEquivalentUS int64   `json:"serial_equivalent_us"`
	WallUS             int64   `json:"wall_us"`
	StatementP50US     int64   `json:"statement_p50_us"`
	StatementP95US     int64   `json:"statement_p95_us"`
	StatementP99US     int64   `json:"statement_p99_us"`
	LockWaits          int64   `json:"lock_waits"`
	LockWaitUS         int64   `json:"lock_wait_us"`
	LockWaitShare      float64 `json:"lock_wait_share"`
	Cancelled          int64   `json:"cancelled,omitempty"`
	FullAborts         int64   `json:"full_aborts,omitempty"`
	ZeroAborts         int64   `json:"zero_aborts,omitempty"`
	LockTimeouts       int64   `json:"lock_timeouts,omitempty"`
	Shed               int64   `json:"shed,omitempty"`
	Retries            int64   `json:"retries,omitempty"`
	SQLStmts           int64   `json:"sql_stmts,omitempty"`
	SnapshotProbes     int64   `json:"snapshot_probes"`
	SnapshotReadWaits  int64   `json:"snapshot_read_waits"`
	Interrupted        bool    `json:"interrupted,omitempty"`
}

func writeFile(path string, data []byte) {
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		os.Exit(1)
	}
	fmt.Printf("stress: wrote %s\n", path)
}

func main() {
	tables := flag.Int("tables", 0, "independent tables (default 4)")
	rows := flag.Int("rows", 0, "initial rows per table (default 200)")
	workers := flag.Int("workers", 0, "concurrent statement-issuing goroutines (default 4)")
	ops := flag.Int("ops", 0, "operations per worker (default 40)")
	seed := flag.Int64("seed", 0, "generator seed (default 1)")
	devices := flag.Int("devices", 0, "simulated disk array width (0 = single spindle)")
	parallel := flag.Int("parallel", 0, "per-statement worker cap for the remaining-index passes")
	budget := flag.Int("budget", 0, "DB-wide admission budget shared by all statements (0 = unbounded)")
	concurrent := flag.Bool("concurrent", false, "run bulk deletes under the §3.1 protocol (early lock release)")
	noWAL := flag.Bool("no-wal", false, "disable write-ahead logging")
	chaosCancel := flag.Int("chaos-cancel", 0, "percent of bulk deletes issued with an already-cancelled context")
	chaosDeadline := flag.Int("chaos-deadline", 0, "percent of bulk deletes issued with a tiny random deadline")
	chaosLockWait := flag.Int("chaos-lockwait", 0, "percent of bulk deletes issued with a tiny random lock-wait budget")
	admissionQueue := flag.Int("admission-queue", 0, "admission wait-queue cap; overflowing parallel statements are shed and retried (0 = unbounded)")
	sqlPct := flag.Int("sql", 0, "percent of operations routed through the SQL wire front door (each worker dials its own session)")
	top := flag.Bool("top", false, "print a live in-flight/lock-graph view while the run executes")
	topEvery := flag.Duration("top-interval", 200*time.Millisecond, "refresh interval for -top")
	benchPath := flag.String("bench-json", "", "write run summary (percentiles, lock-wait share) to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event file (open in chrome://tracing)")
	eventsPath := flag.String("events", "", "write the statement event log as JSONL to this file")
	flag.Parse()

	spec := workload.StressSpec{
		Tables: *tables, Rows: *rows, Workers: *workers, Ops: *ops,
		Devices: *devices, Parallel: *parallel, Budget: *budget,
		Seed: *seed, Concurrent: *concurrent, DisableWAL: *noWAL,
		CancelPct: *chaosCancel, DeadlinePct: *chaosDeadline,
		LockWaitPct: *chaosLockWait, AdmissionQueue: *admissionQueue,
		SQLPct: *sqlPct,
	}

	// SIGINT/SIGTERM cancel the run context: the workers drain, the final
	// verification and the report still happen. A second signal is fatal.
	ctx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	spec.Ctx = ctx
	sigC := make(chan os.Signal, 2)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigC
		fmt.Fprintf(os.Stderr, "stress: %v: draining (signal again to kill)\n", s)
		cancelRun()
		<-sigC
		os.Exit(130)
	}()

	// OnOpen hands us the DB before the workers start, for the live view
	// and the post-run event-log exports.
	var db *bulkdel.DB
	done := make(chan struct{})
	spec.OnOpen = func(d *bulkdel.DB) {
		db = d
		if *top {
			go func() {
				tick := time.NewTicker(*topEvery)
				defer tick.Stop()
				for {
					select {
					case <-done:
						return
					case <-tick.C:
						fmt.Fprint(os.Stderr, "---\n"+d.Inspect().String())
					}
				}
			}()
		}
	}

	stats, err := workload.Stress(spec)
	close(done)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		os.Exit(1)
	}
	status := "ok"
	if stats.Interrupted {
		status = "interrupted (drained + verified)"
	}
	fmt.Printf("stress: %s  bulk-deletes=%d rows-deleted=%d rows-inserted=%d lookups=%d lock-waits=%d\n",
		status, stats.BulkDeletes, stats.RowsDeleted, stats.RowsInserted, stats.Lookups, stats.LockWaits)
	fmt.Printf("stress: snapshot probes=%d read-waits=%d (MVCC reads never queue behind bulk deletes)\n",
		stats.SnapshotProbes, stats.SnapshotReadWaits)
	fmt.Printf("stress: mvcc versions-retained=%d retained-bytes=%d (gauge at drain; pruning returns it to zero)\n",
		stats.VersionsRetained, stats.RetainedBytes)
	if stats.SQLStmts > 0 {
		fmt.Printf("stress: sql statements=%d (via wire front door)\n", stats.SQLStmts)
	}
	if stats.Cancelled+stats.LockTimeouts+stats.Shed > 0 {
		fmt.Printf("stress: chaos cancelled=%d full-aborts=%d zero-aborts=%d lock-timeouts=%d shed=%d retries=%d\n",
			stats.Cancelled, stats.FullAborts, stats.ZeroAborts, stats.LockTimeouts, stats.Shed, stats.Retries)
	}
	fmt.Printf("stress: makespan=%v serial-equivalent=%v wall=%v\n",
		stats.Makespan, stats.SerialEquivalent, stats.WallTime)
	fmt.Printf("stress: statement latency p50=%v p95=%v p99=%v lock-wait=%v\n",
		stats.P50, stats.P95, stats.P99, time.Duration(stats.LockWaitUS)*time.Microsecond)

	if *benchPath != "" {
		sp := spec.Resolved()
		out := benchJSON{
			Tables: sp.Tables, Rows: sp.Rows, Workers: sp.Workers, Ops: sp.Ops,
			Seed: sp.Seed, Devices: sp.Devices, Parallel: sp.Parallel,
			Budget: sp.Budget, Concurrent: sp.Concurrent,
			BulkDeletes:        stats.BulkDeletes,
			RowsDeleted:        stats.RowsDeleted,
			RowsInserted:       stats.RowsInserted,
			Lookups:            stats.Lookups,
			MakespanUS:         stats.Makespan.Microseconds(),
			SerialEquivalentUS: stats.SerialEquivalent.Microseconds(),
			WallUS:             stats.WallTime.Microseconds(),
			StatementP50US:     stats.P50.Microseconds(),
			StatementP95US:     stats.P95.Microseconds(),
			StatementP99US:     stats.P99.Microseconds(),
			LockWaits:          stats.LockWaits,
			LockWaitUS:         stats.LockWaitUS,
			Cancelled:          stats.Cancelled,
			FullAborts:         stats.FullAborts,
			ZeroAborts:         stats.ZeroAborts,
			LockTimeouts:       stats.LockTimeouts,
			Shed:               stats.Shed,
			SQLStmts:           stats.SQLStmts,
			Retries:            stats.Retries,
			SnapshotProbes:     stats.SnapshotProbes,
			SnapshotReadWaits:  stats.SnapshotReadWaits,
			Interrupted:        stats.Interrupted,
		}
		// Share of the workers' combined wall time spent blocked on locks.
		if denom := out.WallUS * int64(sp.Workers); denom > 0 {
			out.LockWaitShare = float64(out.LockWaitUS) / float64(denom)
		}
		j, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		writeFile(*benchPath, j)
	}
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err == nil {
			err = db.Observer().Events().WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		fmt.Printf("stress: wrote %s\n", *eventsPath)
	}
	if *tracePath != "" {
		j, err := db.Observer().Events().ChromeTraceJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		writeFile(*tracePath, j)
	}
}
