// Command stress runs the concurrent workload generator against the
// DB-level lock manager: N worker goroutines issue randomized bulk
// deletes, indexed lookups, and inserts across M independent tables while
// a shadow model tracks what must survive. The run fails (exit 1) if any
// per-statement invariant, the final heap↔index consistency check, or the
// exact scan↔model comparison breaks.
//
// Usage:
//
//	stress                                  # defaults: 4 tables, 4 workers
//	stress -seed 3 -devices 4 -budget 4 -parallel 3 -concurrent
//	stress -workers 8 -ops 200 -rows 1000
//
// The generator is deterministic in (seed, worker): a failing seed replays
// the same operation streams, so CI failures reproduce locally with the
// same flags.
package main

import (
	"flag"
	"fmt"
	"os"

	"bulkdel/internal/workload"
)

func main() {
	tables := flag.Int("tables", 0, "independent tables (default 4)")
	rows := flag.Int("rows", 0, "initial rows per table (default 200)")
	workers := flag.Int("workers", 0, "concurrent statement-issuing goroutines (default 4)")
	ops := flag.Int("ops", 0, "operations per worker (default 40)")
	seed := flag.Int64("seed", 0, "generator seed (default 1)")
	devices := flag.Int("devices", 0, "simulated disk array width (0 = single spindle)")
	parallel := flag.Int("parallel", 0, "per-statement worker cap for the remaining-index passes")
	budget := flag.Int("budget", 0, "DB-wide admission budget shared by all statements (0 = unbounded)")
	concurrent := flag.Bool("concurrent", false, "run bulk deletes under the §3.1 protocol (early lock release)")
	noWAL := flag.Bool("no-wal", false, "disable write-ahead logging")
	flag.Parse()

	spec := workload.StressSpec{
		Tables: *tables, Rows: *rows, Workers: *workers, Ops: *ops,
		Devices: *devices, Parallel: *parallel, Budget: *budget,
		Seed: *seed, Concurrent: *concurrent, DisableWAL: *noWAL,
	}
	stats, err := workload.Stress(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		os.Exit(1)
	}
	fmt.Printf("stress: ok  bulk-deletes=%d rows-deleted=%d rows-inserted=%d lookups=%d lock-waits=%d\n",
		stats.BulkDeletes, stats.RowsDeleted, stats.RowsInserted, stats.Lookups, stats.LockWaits)
	fmt.Printf("stress: makespan=%v serial-equivalent=%v\n", stats.Makespan, stats.SerialEquivalent)
}
