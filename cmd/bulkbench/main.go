// Command bulkbench reproduces the evaluation of "Efficient Bulk Deletes in
// Relational Databases" (ICDE 2001): every figure and table of §4 plus the
// motivating Figure 1, on the simulated disk, printing the same series the
// paper plots (running times in minutes).
//
// Usage:
//
//	bulkbench -exp all                # everything (full scale: 1M rows)
//	bulkbench -exp exp1 -rows 100000  # Figure 7 at 1/10 scale
//	bulkbench -exp plans              # Figures 3/4/5 as explain output
//
// Experiments: fig1, exp1 (fig7), exp2 (fig8), exp3 (table1), exp4 (fig9),
// exp5 (fig10), plans (fig3/4/5), reorg (fig6 ablation), methods (sort vs
// hash ablation), parallel (DAG scheduler on a multi-device array),
// heapscale (partitioned heap across the array), all.
//
// -devices/-parallel run any experiment on a simulated disk array with
// parallel index passes; the parallel and heapscale experiments sweep the
// array width themselves. -check-parallel turns the parallel experiment
// into a smoke test: the run fails unless the scheduled makespan is never
// worse than the serial time. -check-heapscale does the same for the
// heapscale experiment, requiring the partitioned heap pass at 4 devices
// to beat the single-spindle run by at least 2.5x.
//
// At the paper's full scale (-rows 1000000) a complete -exp all run builds
// dozens of 512 MB databases and takes a while of real time; the simulated
// results at -rows 100000 show the same shapes in minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bulkdel/internal/bench"
	"bulkdel/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1, exp1..exp5, plans, reorg, methods, update, parallel, heapscale, all")
		rows     = flag.Int("rows", bench.FullScaleRows, "table size (paper: 1000000)")
		seed     = flag.Int64("seed", 1, "workload seed")
		devices  = flag.Int("devices", 0, "run on a simulated disk array this wide (0 = single spindle)")
		parallel = flag.Int("parallel", 0, "cap the bulk deletes' index-pass workers (needs -devices)")
		check    = flag.Bool("check-parallel", false, "fail unless the parallel experiment's makespan is never worse than serial (CI smoke)")
		checkHS  = flag.Bool("check-heapscale", false, "fail unless the heapscale experiment shows a 2.5x speedup at 4 devices (CI smoke)")
		checkLSM = flag.Bool("check-lsm", false, "fail unless the lsm experiment's tombstone cost is O(1) across selectivities (CI smoke)")
		quiet    = flag.Bool("q", false, "suppress per-run progress")
		jsonDir  = flag.String("json", "", "also write each experiment as BENCH_<id>.json into this directory (\".\" for cwd)")
		traceDir = flag.String("trace", "", "also write each experiment's statement span trees as a Chrome trace_event\nfile (BENCH_<id>_trace.json, open in chrome://tracing) into this directory")
		started  = time.Now()
	)
	flag.Parse()

	r := &bench.Runner{Rows: *rows, Seed: *seed, Devices: *devices, Parallel: *parallel}
	if !*quiet {
		r.Progress = func(line string) { fmt.Println(line) }
	}
	scale := float64(*rows) / float64(bench.FullScaleRows)
	fmt.Printf("bulkbench: %d rows (scale %.2gx, memory scaled accordingly), seed %d\n\n",
		*rows, scale, *seed)

	type runner struct {
		name string
		fn   func() (bench.Experiment, error)
	}
	all := []runner{
		{"fig1", r.Figure1},
		{"exp1", r.Experiment1},
		{"exp2", r.Experiment2},
		{"exp3", r.Experiment3},
		{"exp4", r.Experiment4},
		{"exp5", r.Experiment5},
		{"reorg", r.ReorgAblation},
		{"methods", r.MethodAblation},
		{"update", r.UpdateAblation},
		{"parallel", r.ParallelScaling},
		{"heapscale", r.HeapScaling},
		{"lsm", r.LSMHeadToHead},
	}

	want := strings.ToLower(*exp)
	ran := 0
	if want == "plans" || want == "all" {
		out, err := bench.PlanGallery()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		ran++
	}
	for _, rr := range all {
		if want != "all" && want != rr.name {
			continue
		}
		e, err := rr.fn()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", rr.name, err))
		}
		fmt.Println()
		fmt.Println(e.Format())
		if *check && rr.name == "parallel" {
			if err := verifyParallel(e); err != nil {
				fatal(err)
			}
			fmt.Println("parallel check passed: makespan never worse than serial")
		}
		if *checkHS && rr.name == "heapscale" {
			if err := verifyHeapScale(e); err != nil {
				fatal(err)
			}
			fmt.Println("heapscale check passed: >= 2.5x speedup at 4 devices")
		}
		if *checkLSM && rr.name == "lsm" {
			if err := verifyLSM(e); err != nil {
				fatal(err)
			}
			fmt.Println("lsm check passed: tombstone cost is O(1) across selectivities")
		}
		if *jsonDir != "" {
			path, err := writeJSON(*jsonDir, e)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", rr.name, err))
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *traceDir != "" {
			path, err := writeTrace(*traceDir, e)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", rr.name, err))
			}
			fmt.Printf("wrote %s\n", path)
		}
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown experiment %q (want fig1, exp1..exp5, plans, reorg, methods, update, parallel, heapscale, lsm, all)", *exp))
	}
	if *check && want != "parallel" && want != "all" {
		fatal(fmt.Errorf("-check-parallel needs the parallel experiment (-exp parallel)"))
	}
	if *checkHS && want != "heapscale" && want != "all" {
		fatal(fmt.Errorf("-check-heapscale needs the heapscale experiment (-exp heapscale)"))
	}
	if *checkLSM && want != "lsm" && want != "all" {
		fatal(fmt.Errorf("-check-lsm needs the lsm experiment (-exp lsm)"))
	}
	fmt.Printf("done in %s of real time\n", time.Since(started).Round(time.Second))
}

// verifyParallel is the CI smoke assertion: at every array width the
// scheduled makespan must be at least as good as the serial time.
func verifyParallel(e bench.Experiment) error {
	pts := map[string][]bench.Point{}
	for _, s := range e.Series {
		pts[s.Label] = s.Points
	}
	ser, par := pts["serial"], pts["parallel"]
	if len(ser) == 0 || len(ser) != len(par) {
		return fmt.Errorf("parallel experiment lacks matching serial/parallel series")
	}
	for i := range ser {
		if par[i].Result.Makespan > ser[i].Result.Makespan {
			return fmt.Errorf("parallel makespan %v worse than serial %v at %s devices",
				par[i].Result.Makespan, ser[i].Result.Makespan, ser[i].X)
		}
	}
	return nil
}

// verifyHeapScale is the CI smoke assertion for the partitioned-heap
// experiment: splitting the heap across a 4-device array must cut the
// scheduled makespan of the heap-dominated delete to at most 1/2.5 of the
// single-spindle serial run.
func verifyHeapScale(e bench.Experiment) error {
	pts := map[string]map[string]bench.Point{}
	for _, s := range e.Series {
		m := map[string]bench.Point{}
		for _, p := range s.Points {
			m[p.X] = p
		}
		pts[s.Label] = m
	}
	base, ok := pts["serial"]["1"]
	if !ok {
		return fmt.Errorf("heapscale experiment lacks the serial single-spindle point")
	}
	par, ok := pts["parallel"]["4"]
	if !ok {
		return fmt.Errorf("heapscale experiment lacks the parallel 4-device point")
	}
	speedup := float64(base.Result.Makespan) / float64(par.Result.Makespan)
	if speedup < 2.5 {
		return fmt.Errorf("heapscale speedup at 4 devices is %.2fx (serial %v, parallel %v), want >= 2.5x",
			speedup, base.Result.Makespan, par.Result.Makespan)
	}
	return nil
}

// verifyLSM is the CI smoke assertion for the head-to-head: the tombstone
// series' statement I/O must be constant (and tiny) across selectivities —
// the O(1) foreground-cost claim — while the B-tree side's grows.
func verifyLSM(e bench.Experiment) error {
	var tomb, heap []bench.Point
	for _, s := range e.Series {
		switch s.Label {
		case "lsm tombstone":
			tomb = s.Points
		case "⋈̸ over B-trees (3 ix)":
			heap = s.Points
		}
	}
	if len(tomb) < 3 || len(heap) < 3 {
		return fmt.Errorf("lsm experiment lacks the tombstone and B-tree series")
	}
	first := tomb[0].Result.Disk.Reads + tomb[0].Result.Disk.Writes
	for _, p := range tomb {
		ios := p.Result.Disk.Reads + p.Result.Disk.Writes
		if ios != first {
			return fmt.Errorf("tombstone I/O varies with selectivity: %d at %s vs %d at %s",
				ios, p.X, first, tomb[0].X)
		}
		if ios > 8 {
			return fmt.Errorf("tombstone statement cost %d I/Os at %s, want O(1)", ios, p.X)
		}
	}
	if last, firstH := heap[len(heap)-1].Result, heap[0].Result; last.SimTime <= firstH.SimTime {
		return fmt.Errorf("B-tree side did not grow with selectivity (%v at %s, %v at %s)",
			firstH.SimTime, heap[0].X, last.SimTime, heap[len(heap)-1].X)
	}
	return nil
}

// writeJSON encodes the experiment as BENCH_<id>.json in dir; the file
// stem is the first field of the experiment ID ("exp1 (fig7)" → exp1).
func writeJSON(dir string, e bench.Experiment) (string, error) {
	stem := strings.Fields(e.ID)[0]
	j, err := e.JSON()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+stem+".json")
	return path, os.WriteFile(path, append(j, '\n'), 0o644)
}

// writeTrace encodes every run's statement span tree as one Chrome
// trace_event file: one thread per (series, point) run, so the whole
// experiment renders side by side in chrome://tracing.
func writeTrace(dir string, e bench.Experiment) (string, error) {
	stem := strings.Fields(e.ID)[0]
	var ct obs.ChromeTrace
	ct.SetProcessName(1, "bulkbench "+e.ID)
	tid := 0
	for _, s := range e.Series {
		for _, p := range s.Points {
			if p.Result.Trace == nil {
				continue
			}
			tid++
			ct.SetThreadName(1, tid, fmt.Sprintf("%s %s=%s", s.Label, e.XLabel, p.X))
			ct.AddSpanTree(1, tid, p.Result.Trace)
		}
	}
	j, err := ct.JSON()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+stem+"_trace.json")
	return path, os.WriteFile(path, append(j, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bulkbench:", err)
	os.Exit(1)
}
