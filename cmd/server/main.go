// Command server is the TCP front door: it opens a fresh in-memory
// database and serves the length-delimited SQL wire protocol, one session
// per connection. Statements from all connections contend inside the
// engine exactly like concurrent Go-API statements — per-table lock
// footprints, the shared parallel-worker admission pool, and the
// cancellation machinery.
//
// Usage:
//
//	server                                  # listen on 127.0.0.1:7878
//	server -addr :7878 -devices 4 -parallel 3 -admission-queue 8
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// statements finish, and connected clients are waited for up to -drain;
// past the deadline every session context is cancelled and the remaining
// statements abort to consistency. A second signal forces immediate
// cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bulkdel"
	"bulkdel/internal/session"
	"bulkdel/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7878", "listen address")
	devices := flag.Int("devices", 1, "simulated disk devices (≥2 enables parallel index passes)")
	parallel := flag.Int("parallel", 0, "DB-wide parallel worker budget (0 = unbounded)")
	admissionQueue := flag.Int("admission-queue", 0, "max statements queued for the worker pool (0 = unbounded)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline before in-flight statements are cancelled")
	flag.Parse()

	db, err := bulkdel.Open(bulkdel.Options{
		Devices:        *devices,
		Parallel:       *parallel,
		AdmissionQueue: *admissionQueue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	srv := wire.NewServer(session.NewFrontend(db))
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("listening on %s (devices=%d parallel=%d)\n", ln.Addr(), *devices, *parallel)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("%v: draining (up to %v; signal again to cancel in-flight statements)\n", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	go func() {
		<-sig
		cancel() // second signal: expire the drain deadline now
	}()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Println("forced shutdown: in-flight statements cancelled")
	} else {
		fmt.Println("drained cleanly")
	}
	cancel()

	// The engine must come down with nothing in flight.
	if rep := db.Inspect(); len(rep.Statements) != 0 {
		fmt.Fprintf(os.Stderr, "leaked statements at shutdown: %+v\n", rep.Statements)
		os.Exit(1)
	}
}
