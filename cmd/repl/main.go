// Command repl is the interactive SQL front door. By default it opens a
// fresh in-memory database and executes statements in a local session;
// with -connect it speaks the wire protocol to a running server instead.
//
// Usage:
//
//	repl                         # local in-memory database
//	repl -devices 4 -parallel 3  # local, parallel index passes enabled
//	repl -connect 127.0.0.1:7878 # talk to cmd/server
//	repl -f setup.sql            # run a script, then exit
//	repl -f setup.sql -i         # run a script, then go interactive
//	echo 'SELECT 1;' | repl -q   # scriptable: no prompts or banners
//
// Statements may span lines and end with ';'. A line containing only \q
// (or quit / exit) leaves the REPL.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bulkdel"
	"bulkdel/internal/session"
	"bulkdel/internal/sql"
	"bulkdel/internal/wire"
)

// executor abstracts the two back ends: a local session or a wire client.
type executor interface {
	Exec(src string) (*session.Result, error)
}

func main() {
	devices := flag.Int("devices", 1, "simulated disk devices (local mode)")
	parallel := flag.Int("parallel", 0, "DB-wide parallel worker budget (local mode)")
	connect := flag.String("connect", "", "connect to a wire server instead of opening a local database")
	script := flag.String("f", "", "execute statements from this file")
	interactive := flag.Bool("i", false, "stay interactive after -f")
	quiet := flag.Bool("q", false, "no prompts or banner (for piped input)")
	flag.Parse()

	var exec executor
	switch {
	case *connect != "":
		c, err := wire.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connect:", err)
			os.Exit(1)
		}
		defer c.Close()
		exec = c
		if !*quiet {
			fmt.Printf("connected to %s\n", *connect)
		}
	default:
		db, err := bulkdel.Open(bulkdel.Options{Devices: *devices, Parallel: *parallel})
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		s := session.NewFrontend(db).NewSession(context.Background())
		defer s.Close()
		exec = s
		if !*quiet {
			fmt.Printf("in-memory database (devices=%d); end statements with ';', \\q quits\n", *devices)
		}
	}

	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !runAll(exec, string(src), os.Stdout) {
			os.Exit(1)
		}
		if !*interactive {
			return
		}
	}

	repl(exec, os.Stdin, os.Stdout, *quiet)
}

// runAll executes every statement in src, printing results; it keeps
// going past statement errors and reports whether all succeeded.
func runAll(exec executor, src string, out io.Writer) bool {
	ok := true
	for _, stmt := range sql.SplitStatements(src) {
		if !runOne(exec, stmt, out) {
			ok = false
		}
	}
	return ok
}

func runOne(exec executor, stmt string, out io.Writer) bool {
	res, err := exec.Exec(stmt)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return false
	}
	io.WriteString(out, res.Format())
	return true
}

func repl(exec executor, in io.Reader, out io.Writer, quiet bool) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if quiet {
			return
		}
		if buf.Len() == 0 {
			io.WriteString(out, "sql> ")
		} else {
			io.WriteString(out, "  -> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		if buf.Len() == 0 {
			switch strings.TrimSpace(line) {
			case `\q`, "quit", "exit":
				return
			case "":
				prompt()
				continue
			}
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		// A statement ends at a ';' on the end of a line; SplitStatements
		// handles several on one line and ';' inside strings or comments.
		if strings.HasSuffix(strings.TrimRight(line, " \t"), ";") {
			runAll(exec, buf.String(), out)
			buf.Reset()
		}
		prompt()
	}
	// EOF with a dangling unterminated statement: run what's there.
	if strings.TrimSpace(buf.String()) != "" {
		runAll(exec, buf.String(), out)
	}
	if !quiet {
		io.WriteString(out, "\n")
	}
}
