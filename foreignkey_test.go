package bulkdel

import (
	"errors"
	"testing"
)

// fkFixture: orders (parent) ← lines (child, FK on field 0), and a
// grandchild notes referencing lines' field 1.
func fkFixture(t *testing.T, action RefAction) (*DB, *Table, *Table) {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateTable("orders", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := orders.CreateIndex(IndexOptions{Name: "id", Field: 0, Unique: true}); err != nil {
		t.Fatal(err)
	}
	lines, err := db.CreateTable("lines", 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := lines.CreateIndex(IndexOptions{Name: "order", Field: 0}); err != nil {
		t.Fatal(err)
	}
	if err := lines.CreateIndex(IndexOptions{Name: "lineid", Field: 1, Unique: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := orders.Insert(int64(i), int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	// 3 lines per order for the first 300 orders.
	lineID := int64(0)
	for o := 0; o < 300; o++ {
		for l := 0; l < 3; l++ {
			if _, err := lines.Insert(int64(o), lineID, int64(l)); err != nil {
				t.Fatal(err)
			}
			lineID++
		}
	}
	if err := db.AddForeignKey(lines, 0, orders, 0, action); err != nil {
		t.Fatal(err)
	}
	return db, orders, lines
}

func TestForeignKeyRestrictBlocks(t *testing.T) {
	_, orders, lines := fkFixture(t, Restrict)
	before := orders.Count()
	_, err := orders.BulkDelete(0, []int64{5, 450}, BulkOptions{})
	var restricted *ErrRestricted
	if !errors.As(err, &restricted) {
		t.Fatalf("expected ErrRestricted, got %v", err)
	}
	if restricted.Child != "lines" {
		t.Fatalf("restricted by %q", restricted.Child)
	}
	// Nothing was touched — "no work needs to be undone".
	if orders.Count() != before {
		t.Fatalf("count changed to %d", orders.Count())
	}
	if err := orders.Check(); err != nil {
		t.Fatal(err)
	}
	if err := lines.Check(); err != nil {
		t.Fatal(err)
	}
	// Victims without children delete fine.
	res, err := orders.BulkDelete(0, []int64{450, 460}, BulkOptions{})
	if err != nil || res.Deleted != 2 {
		t.Fatalf("unreferenced delete: %v %v", res, err)
	}
}

func TestForeignKeyCascade(t *testing.T) {
	_, orders, lines := fkFixture(t, Cascade)
	res, err := orders.BulkDelete(0, []int64{1, 2, 400}, BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 3 {
		t.Fatalf("deleted %d orders", res.Deleted)
	}
	if res.Cascaded != 6 { // orders 1 and 2 have 3 lines each; 400 none
		t.Fatalf("cascaded %d, want 6", res.Cascaded)
	}
	if lines.Count() != 900-6 {
		t.Fatalf("lines count %d", lines.Count())
	}
	for _, o := range []int64{1, 2} {
		if rows, _ := lines.Lookup(0, o); len(rows) != 0 {
			t.Fatalf("lines of order %d survived", o)
		}
	}
	if err := orders.Check(); err != nil {
		t.Fatal(err)
	}
	if err := lines.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestForeignKeyMultiLevelCascade(t *testing.T) {
	db, orders, lines := fkFixture(t, Cascade)
	notes, err := db.CreateTable("notes", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := notes.CreateIndex(IndexOptions{Name: "line", Field: 0}); err != nil {
		t.Fatal(err)
	}
	// Two notes per line id for the first 100 lines.
	for l := 0; l < 100; l++ {
		for k := 0; k < 2; k++ {
			if _, err := notes.Insert(int64(l), int64(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// notes.field0 references lines.field1 (the unique line id).
	if err := db.AddForeignKey(notes, 0, lines, 1, Cascade); err != nil {
		t.Fatal(err)
	}
	// Deleting order 0 cascades into its 3 lines (ids 0,1,2), each of
	// which cascades into 2 notes.
	res, err := orders.BulkDelete(0, []int64{0}, BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 || res.Cascaded != 3+6 {
		t.Fatalf("deleted=%d cascaded=%d, want 1/9", res.Deleted, res.Cascaded)
	}
	if notes.Count() != 200-6 {
		t.Fatalf("notes count %d", notes.Count())
	}
	for _, tblx := range []*Table{orders, lines, notes} {
		if err := tblx.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestForeignKeyValidation(t *testing.T) {
	db, orders, lines := fkFixture(t, Restrict)
	if err := db.AddForeignKey(nil, 0, orders, 0, Restrict); err == nil {
		t.Fatal("nil child accepted")
	}
	if err := db.AddForeignKey(lines, 9, orders, 0, Restrict); err == nil {
		t.Fatal("bad child field accepted")
	}
	if err := db.AddForeignKey(lines, 0, orders, 9, Restrict); err == nil {
		t.Fatal("bad parent field accepted")
	}
	if err := db.AddForeignKey(lines, 2, orders, 0, Restrict); err == nil {
		t.Fatal("unindexed child field accepted")
	}
	if len(db.ForeignKeys()) != 1 {
		t.Fatalf("fk count %d", len(db.ForeignKeys()))
	}
	// Deleting the parent by a different field than the referenced one
	// projects the doomed rows' referenced keys first: many of the
	// orders with field1 == 3 have lines, so RESTRICT still fires and
	// nothing is modified.
	before := orders.Count()
	_, err := orders.BulkDelete(1, []int64{3}, BulkOptions{})
	var restricted *ErrRestricted
	if !errors.As(err, &restricted) {
		t.Fatalf("indirect restrict not enforced: %v", err)
	}
	if orders.Count() != before {
		t.Fatal("restricted delete modified the table")
	}
}

func TestForeignKeyIndirectCascade(t *testing.T) {
	// Cascade driven by a delete on a *different* parent attribute: the
	// doomed orders' ids are projected read-only, then the lines cascade.
	db, orders, lines := fkFixture(t, Cascade)
	_ = db
	// Delete all orders with field1 == 2: ids 2, 9, 16, ... Every such
	// id below 300 has 3 lines.
	res, err := orders.BulkDelete(1, []int64{2}, BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantOrders := int64(0)
	wantLines := int64(0)
	for i := 0; i < 500; i++ {
		if i%7 == 2 {
			wantOrders++
			if i < 300 {
				wantLines += 3
			}
		}
	}
	if res.Deleted != wantOrders || res.Cascaded != wantLines {
		t.Fatalf("deleted=%d cascaded=%d, want %d/%d", res.Deleted, res.Cascaded, wantOrders, wantLines)
	}
	if err := orders.Check(); err != nil {
		t.Fatal(err)
	}
	if err := lines.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestForeignKeySurvivesRecovery(t *testing.T) {
	db, orders, _ := fkFixture(t, Restrict)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	disk := db.SimulateCrash()
	db2, _, err := Recover(disk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.ForeignKeys()) != 1 {
		t.Fatalf("fk lost in recovery: %d", len(db2.ForeignKeys()))
	}
	orders2 := db2.Table("orders")
	_ = orders
	_, err = orders2.BulkDelete(0, []int64{5}, BulkOptions{})
	var restricted *ErrRestricted
	if !errors.As(err, &restricted) {
		t.Fatalf("restrict not enforced after recovery: %v", err)
	}
}

func TestRefActionString(t *testing.T) {
	if Restrict.String() != "restrict" || Cascade.String() != "cascade" {
		t.Fatal("RefAction strings")
	}
}

// TestForeignKeyDiamondCascade cascades into the same grandchild from two
// branches: P → A → C and P → B → C. The second visit to C must still hold
// C's exclusive lock (cascade children are kept locked until the statement's
// ReleaseAll — an early release after the first visit would let another
// statement take C while this one mutates it again), and the revisit must
// be a clean no-op for the already-deleted rows.
func TestForeignKeyDiamondCascade(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, fields int, indexed ...IndexOptions) *Table {
		tbl, err := db.CreateTable(name, fields, 48)
		if err != nil {
			t.Fatal(err)
		}
		for _, ix := range indexed {
			if err := tbl.CreateIndex(ix); err != nil {
				t.Fatal(err)
			}
		}
		return tbl
	}
	p := mk("P", 1, IndexOptions{Name: "id", Field: 0, Unique: true})
	a := mk("A", 2, IndexOptions{Name: "id", Field: 0, Unique: true}, IndexOptions{Name: "pref", Field: 1})
	b := mk("B", 2, IndexOptions{Name: "id", Field: 0, Unique: true}, IndexOptions{Name: "pref", Field: 1})
	c := mk("C", 3, IndexOptions{Name: "aref", Field: 1}, IndexOptions{Name: "bref", Field: 2})
	for i := int64(0); i < 10; i++ {
		if _, err := p.Insert(i); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Insert(100+i, i); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Insert(200+i, i); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Insert(300+i, 100+i, 200+i); err != nil {
			t.Fatal(err)
		}
	}
	for _, fk := range []struct {
		child  *Table
		cf     int
		parent *Table
	}{
		{a, 1, p}, {b, 1, p}, {c, 1, a}, {c, 2, b},
	} {
		if err := db.AddForeignKey(fk.child, fk.cf, fk.parent, 0, Cascade); err != nil {
			t.Fatal(err)
		}
	}

	res, err := p.BulkDelete(0, []int64{0, 1, 2}, BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 A rows + 3 C rows (via A) + 3 B rows + 0 C rows (via B: already
	// deleted by the first branch).
	if res.Deleted != 3 || res.Cascaded != 9 {
		t.Fatalf("deleted=%d cascaded=%d, want 3/9", res.Deleted, res.Cascaded)
	}
	for tbl, want := range map[*Table]int64{p: 7, a: 7, b: 7, c: 7} {
		if err := tbl.Check(); err != nil {
			t.Fatalf("%s: %v", tbl.Name(), err)
		}
		if got := tbl.Count(); got != want {
			t.Fatalf("%s has %d rows, want %d", tbl.Name(), got, want)
		}
	}
}
