// Concurrent: the paper's §3 in action. A bulk delete runs with the
// concurrency protocol enabled — exclusive table lock, all indexes offline,
// the lock released as soon as the table and the unique indexes are
// processed — while updater goroutines keep inserting rows. Updates to the
// still-offline indexes flow through side-files that the bulk deleter
// replays before bringing each index back online.
//
// Afterwards the example crashes the database and recovers it, showing the
// §3.2 restart path (here the bulk delete had committed, so recovery finds
// nothing to roll forward — the roll-forward itself is exercised by the
// test suite's crash-injection tests).
package main

import (
	"fmt"
	"log"
	"sync"

	"bulkdel"
)

func main() {
	db, err := bulkdel.Open(bulkdel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	events, err := db.CreateTable("events", 3, 128)
	if err != nil {
		log.Fatal(err)
	}
	// The id index is unique: the paper requires unique indexes to be
	// processed before the table lock is released, so uniqueness stays
	// enforceable. The kind index stays offline longer and receives
	// concurrent updates through its side-file.
	if err := events.CreateIndex(bulkdel.IndexOptions{Name: "id", Field: 0, Unique: true}); err != nil {
		log.Fatal(err)
	}
	if err := events.CreateIndex(bulkdel.IndexOptions{Name: "kind", Field: 1}); err != nil {
		log.Fatal(err)
	}
	// Two more non-unique indexes: they are processed after the table
	// lock is released, which widens the window in which concurrent
	// updates flow through side-files.
	if err := events.CreateIndex(bulkdel.IndexOptions{Name: "shard", Field: 2}); err != nil {
		log.Fatal(err)
	}
	const n = 60000
	for i := 0; i < n; i++ {
		if _, err := events.Insert(int64(i), int64(i%50), int64(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events table: %d rows\n", events.Count())

	// Victims: the oldest half of the ids.
	victims := make([]int64, n/2)
	for i := range victims {
		victims[i] = int64(i)
	}

	// Updaters insert new events while the bulk delete runs. Their
	// first insert blocks on the shared table lock until the bulk
	// deleter releases it (after the heap and the unique id index); the
	// rest land in the side-files of the still-offline kind and shard
	// indexes.
	const updaters, insertsEach = 2, 1200
	var wg sync.WaitGroup
	var mu sync.Mutex
	var newIDs []int64
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < insertsEach; i++ {
				id := int64(1000000 + w*100000 + i)
				if _, err := events.Insert(id, id%50, id); err != nil {
					log.Printf("updater %d: %v", w, err)
					return
				}
				mu.Lock()
				newIDs = append(newIDs, id)
				mu.Unlock()
			}
		}(w)
	}

	res, err := events.BulkDelete(0, victims, bulkdel.BulkOptions{Concurrent: true})
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("bulk delete removed %d records (%v plan) in %v simulated\n",
		res.Deleted, res.Method, res.Elapsed)
	fmt.Printf("concurrent inserts while it ran: %d (side-file operations replayed: %d)\n",
		len(newIDs), res.SideFileOps)

	// Every concurrent insert must be visible through every index.
	for _, id := range newIDs {
		rows, err := events.Lookup(0, id)
		if err != nil || len(rows) != 1 {
			log.Fatalf("insert %d lost: %v %v", id, rows, err)
		}
	}
	if err := events.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistency verified: %d rows, all indexes agree\n\n", events.Count())

	// Crash and recover.
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	disk := db.SimulateCrash()
	fmt.Println("simulated crash: volatile state gone")
	db2, report, err := bulkdel.Recover(disk, bulkdel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	events2 := db2.Table("events")
	if report.BulkInProgress {
		fmt.Printf("recovery rolled forward a bulk delete on %s (%d records)\n",
			report.Table, report.RolledForward)
	} else {
		fmt.Println("recovery: no bulk delete was in flight (it had committed)")
	}
	if err := events2.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered database verified: %d rows\n", events2.Count())
}
