// Warehouse: a data warehouse keeps a rolling window of the last six months
// of sales (the paper's second motivating application). Every month the
// oldest month is deleted in bulk and a fresh month is loaded.
//
// The sales table is loaded in date order, so the date index is clustered —
// the paper's Experiment 5 setting, where even the sorted traditional
// delete becomes competitive; the example prints both so the effect is
// visible, then keeps rolling the window with bulk deletes and shows that
// the cost per roll stays flat as months come and go.
package main

import (
	"fmt"
	"log"

	"bulkdel"
)

const (
	fDay = iota
	fStore
	fItem
	fAmount
)

const (
	daysPerMonth = 30
	months       = 6
	rowsPerDay   = 120
)

func day(month, d int) int64 { return int64(month*100+d) * 10 }

func loadMonth(sales *bulkdel.Table, month int) error {
	for d := 0; d < daysPerMonth; d++ {
		for r := 0; r < rowsPerDay; r++ {
			// Unique-ish attributes derived from (month, day, row).
			id := int64(month)*1000000 + int64(d)*1000 + int64(r)
			if _, err := sales.Insert(day(month, d), id%977, id%8171, id); err != nil {
				return err
			}
		}
	}
	return nil
}

func monthVictims(month int) []int64 {
	out := make([]int64, daysPerMonth)
	for d := range out {
		out[d] = day(month, d)
	}
	return out
}

func main() {
	// Keep the buffer well below the table size so the runs are
	// I/O-bound, as in the paper.
	db, err := bulkdel.Open(bulkdel.Options{BufferBytes: 512 << 10})
	if err != nil {
		log.Fatal(err)
	}
	sales, err := db.CreateTable("sales", 4, 128)
	if err != nil {
		log.Fatal(err)
	}
	// Months load in date order: the date index is clustered.
	for m := 0; m < months; m++ {
		if err := loadMonth(sales, m); err != nil {
			log.Fatal(err)
		}
	}
	if err := sales.CreateIndex(bulkdel.IndexOptions{
		Name: "date", Field: fDay, Clustered: true,
	}); err != nil {
		log.Fatal(err)
	}
	if err := sales.CreateIndex(bulkdel.IndexOptions{Name: "store", Field: fStore}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sales table: %d rows (%d months), clustered date index + store index\n\n",
		sales.Count(), months)

	// Roll the window several times: delete the oldest month, load a new
	// one. The delete hits every date of that month (30 victim keys, many
	// duplicates each — a bulk delete with duplicate keys).
	for roll := 0; roll < 4; roll++ {
		oldest := roll
		next := months + roll
		before := db.Clock()
		res, err := sales.BulkDelete(fDay, monthVictims(oldest), bulkdel.BulkOptions{})
		if err != nil {
			log.Fatal(err)
		}
		deleteTime := db.Clock() - before
		if err := loadMonth(sales, next); err != nil {
			log.Fatal(err)
		}
		if err := sales.Check(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("roll %d: dropped month %d (%5d records) in %7.2f simulated seconds, loaded month %d, count %d\n",
			roll+1, oldest, res.Deleted, deleteTime.Seconds(), next, sales.Count())
	}

	// For contrast: the same monthly delete with the traditional
	// approach. The table is clustered on the delete attribute — the
	// traditional approach's best case, the paper's Experiment 5, where
	// sorted/trad is competitive with (even slightly ahead of) the bulk
	// delete. On unclustered layouts or with more indexes the bulk
	// delete wins clearly (see the archiving example and Figures 7/8).
	before := db.Clock()
	n, err := sales.DeleteTraditional(fDay, monthVictims(4), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor comparison, sorted traditional delete of month 4 (%d records): %.2f simulated seconds\n",
		n, (db.Clock() - before).Seconds())
	fmt.Println("(a clustered delete attribute is the traditional approach's best case — the paper's Experiment 5)")
	if err := sales.Check(); err != nil {
		log.Fatal(err)
	}
}
