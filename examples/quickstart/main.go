// Quickstart: create a table with two indexes, load rows, and run one bulk
// DELETE with the paper's vertical operator, printing the executed plan and
// the simulated cost.
package main

import (
	"fmt"
	"log"

	"bulkdel"
)

func main() {
	db, err := bulkdel.Open(bulkdel.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// R(A, B, C) padded to 128-byte records.
	r, err := db.CreateTable("R", 3, 128)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.CreateIndex(bulkdel.IndexOptions{Name: "IA", Field: 0, Unique: true}); err != nil {
		log.Fatal(err)
	}
	if err := r.CreateIndex(bulkdel.IndexOptions{Name: "IB", Field: 1}); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 20000; i++ {
		if _, err := r.Insert(int64(i), int64(i*7%20011), int64(i%100)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d rows, indexes %v\n", r.Count(), r.IndexNames())

	// DELETE FROM R WHERE A IN (0, 2, 4, ..., 5998) — 3000 victims.
	victims := make([]int64, 3000)
	for i := range victims {
		victims[i] = int64(2 * i)
	}

	fmt.Println("\nplan:")
	fmt.Print(r.Explain(0, bulkdel.SortMerge, 0))

	res, err := r.BulkDelete(0, victims, bulkdel.BulkOptions{Method: bulkdel.SortMerge})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeleted %d records with the %v plan in %v of simulated time\n",
		res.Deleted, res.Method, res.Elapsed)

	if err := r.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistency check passed; %d rows remain\n", r.Count())

	st := db.DiskStats()
	fmt.Printf("disk: %d reads, %d writes (%d random, %d near, %d sequential)\n",
		st.Reads, st.Writes, st.RandomOps, st.NearOps, st.SeqOps)
}
