// Archiving: the paper's motivating scenario. An orders table accumulates
// history; periodically, orders processed more than three months ago are
// extracted to tape (step 1, a query — not this package's subject) and then
// deleted in bulk (step 2 — the paper's subject).
//
// The example builds the same orders table twice and deletes the same
// victim set with the traditional record-at-a-time approach and with the
// vertical bulk delete, comparing simulated times — a miniature of the
// paper's Figure 7.
package main

import (
	"fmt"
	"log"
	"time"

	"bulkdel"
)

const (
	fOrderID = iota
	fOrderDate
	fShipDate
	fCustomer
	fStatus
)

const (
	rows     = 50000
	firstDay = 20250101 // YYYYMMDD-ish day codes
)

// buildOrders creates the orders table; withLines adds an order_lines
// child table referencing it with ON DELETE CASCADE, so archiving an order
// takes its line items along — checked and cascaded vertically (paper §2.1
// folds referential integrity into the same machinery as the index
// maintenance).
func buildOrders(db *bulkdel.DB, withLines bool) (*bulkdel.Table, []int64, error) {
	orders, err := db.CreateTable("orders", 5, 256)
	if err != nil {
		return nil, nil, err
	}
	// Index on the order id (unique) and on the order date — the
	// archiving delete runs against the date index. The paper's point
	// about partitioning applies here: orders are also deleted by ship
	// date sometimes, so date-partitioning the table would not cover
	// both; indexes + bulk deletes do.
	if err := orders.CreateIndex(bulkdel.IndexOptions{Name: "id", Field: fOrderID, Unique: true}); err != nil {
		return nil, nil, err
	}
	if err := orders.CreateIndex(bulkdel.IndexOptions{Name: "odate", Field: fOrderDate}); err != nil {
		return nil, nil, err
	}
	if err := orders.CreateIndex(bulkdel.IndexOptions{Name: "sdate", Field: fShipDate}); err != nil {
		return nil, nil, err
	}
	// The table was consolidated from several regional systems, so its
	// physical order does not follow the order date — the general case
	// the paper targets (when it does, see the warehouse example and the
	// paper's Experiment 5).
	var archive []int64
	for i := 0; i < rows; i++ {
		oDate := int64(firstDay + (i*7919)%rows) // dates scattered in the heap
		sDate := oDate + int64(i%5)
		status := int64(i % 4) // 0 = fully processed
		if _, err := orders.Insert(int64(i), oDate, sDate, int64(i%997), status); err != nil {
			return nil, nil, err
		}
		// Archive: processed orders in the older half of the data.
		if status == 0 && oDate < firstDay+rows/2 {
			archive = append(archive, oDate)
		}
	}
	if !withLines {
		return orders, archive, nil
	}
	// Line items: two per order for every fifth order, cascading on
	// delete of the order date (indirect FK: lines reference the order
	// id while the archive deletes by order date — the engine projects
	// the doomed ids first).
	lines, err := db.CreateTable("order_lines", 3, 128)
	if err != nil {
		return nil, nil, err
	}
	if err := lines.CreateIndex(bulkdel.IndexOptions{Name: "order", Field: 0}); err != nil {
		return nil, nil, err
	}
	for i := 0; i < rows; i += 5 {
		for l := 0; l < 2; l++ {
			if _, err := lines.Insert(int64(i), int64(l), int64(i%977)); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := db.AddForeignKey(lines, 0, orders, fOrderID, bulkdel.Cascade); err != nil {
		return nil, nil, err
	}
	return orders, archive, nil
}

func run(approach string) (time.Duration, int64) {
	// A 1 MB buffer against a ~7.5 MB table keeps the experiment
	// I/O-bound, like the paper's 5 MB against 512 MB.
	db, err := bulkdel.Open(bulkdel.Options{BufferBytes: 512 << 10})
	if err != nil {
		log.Fatal(err)
	}
	orders, archive, err := buildOrders(db, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	start := db.Clock()
	var deleted int64
	switch approach {
	case "traditional":
		deleted, err = orders.DeleteTraditional(fOrderDate, archive, false)
	case "bulk":
		var res *bulkdel.BulkResult
		res, err = orders.BulkDelete(fOrderDate, archive, bulkdel.BulkOptions{})
		if res != nil {
			deleted = res.Deleted
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := orders.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := orders.Check(); err != nil {
		log.Fatalf("%s left the table inconsistent: %v", approach, err)
	}
	return db.Clock() - start, deleted
}

func main() {
	fmt.Printf("archiving %d-row orders table (3 indexes), deleting processed orders older than the cutoff\n\n", rows)
	tTrad, nTrad := run("traditional")
	tBulk, nBulk := run("bulk")
	fmt.Printf("traditional delete: %8.2f simulated minutes (%d records)\n", tTrad.Minutes(), nTrad)
	fmt.Printf("bulk delete:        %8.2f simulated minutes (%d records)\n", tBulk.Minutes(), nBulk)
	fmt.Printf("\nspeedup: %.1fx\n", float64(tTrad)/float64(tBulk))

	// Bonus: the same archive with an ON DELETE CASCADE child table —
	// the vertical machinery also carries the line items away.
	db, err := bulkdel.Open(bulkdel.Options{BufferBytes: 512 << 10})
	if err != nil {
		log.Fatal(err)
	}
	orders, archive, err := buildOrders(db, true)
	if err != nil {
		log.Fatal(err)
	}
	lines := db.Table("order_lines")
	res, err := orders.BulkDelete(fOrderDate, archive, bulkdel.BulkOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith ON DELETE CASCADE: archived %d orders and %d line items vertically\n",
		res.Deleted, res.Cascaded)
	if err := orders.Check(); err != nil {
		log.Fatal(err)
	}
	if err := lines.Check(); err != nil {
		log.Fatal(err)
	}
}
