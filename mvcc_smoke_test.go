package bulkdel

import (
	"testing"

	"bulkdel/internal/core"
	"bulkdel/internal/obs"
)

// Reads-during-delete smoke: park a concurrent bulk delete mid-heap-pass —
// the point where it holds the exclusive table lock and its indexes are
// offline — and drive every read path. Each must complete without queueing
// behind the lock (the snapshot-read-wait counter stays zero), see the
// pre-delete state (the delete's epoch is uncommitted while parked), and a
// view opened before the delete must keep seeing the victims after it
// commits. This is the tentpole's acceptance scenario in miniature; the
// workload stress runs the same probes at scale.
func TestSnapshotReadsDuringBulkDelete(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("T", 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex(IndexOptions{Name: "pk", Field: 0, Unique: true}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex(IndexOptions{Name: "sec", Field: 1}); err != nil {
		t.Fatal(err)
	}
	const rows = 80
	rids := make([]RID, rows)
	for i := int64(0); i < rows; i++ {
		rid, err := tbl.Insert(i, 2*i, i%5)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	victims := make([]int64, 0, 30)
	for k := int64(10); k < 40; k++ {
		victims = append(victims, k)
	}

	view, err := tbl.View() // pre-delete snapshot, closed at the end
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	inPass := make(chan struct{})
	release := make(chan struct{})
	core.TestHookMidHeapPass = func() {
		core.TestHookMidHeapPass = nil // park on the first slot deletion only
		close(inPass)
		<-release
	}
	defer func() { core.TestHookMidHeapPass = nil }()

	delDone := make(chan struct{})
	var delRes *BulkResult
	var delErr error
	go func() {
		defer close(delDone)
		delRes, delErr = tbl.BulkDelete(0, victims,
			BulkOptions{Method: SortMerge, Concurrent: true})
	}()
	<-inPass

	// The statement is parked holding its exclusive lock; Inspect must show
	// it, and every read below runs against that held lock.
	exclusive := false
	for _, ti := range db.Inspect().WaitGraph.Tables {
		if ti.Table == "T" && ti.Exclusive {
			exclusive = true
		}
	}
	if !exclusive {
		t.Error("mid-delete Inspect does not show T exclusively locked")
	}

	const victim = int64(20)
	if got, err := tbl.Lookup(0, victim); err != nil || len(got) != 1 || got[0][1] != 2*victim {
		t.Fatalf("Lookup(victim) during delete: rows=%v err=%v, want the intact row", got, err)
	}
	if fields, err := tbl.Get(rids[victim]); err != nil || fields[1] != 2*victim {
		t.Fatalf("Get(victim rid) during delete: %v %v", fields, err)
	}
	if got, err := tbl.LookupRange(0, 35, 44); err != nil || len(got) != 10 {
		t.Fatalf("LookupRange during delete: %d rows err=%v, want 10", len(got), err)
	}
	n := 0
	if err := tbl.Scan(func(RID, []int64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("Scan during delete saw %d rows, want %d (delete is uncommitted)", n, rows)
	}
	if got, err := view.Lookup(0, victim); err != nil || len(got) != 1 {
		t.Fatalf("view Lookup(victim) during delete: rows=%v err=%v", got, err)
	}

	reg := db.Observer().Registry()
	if w := reg.Counter(obs.MetricSnapshotReadWaits).Value(); w != 0 {
		t.Errorf("%d snapshot reads queued behind the bulk delete, want 0", w)
	}
	if r := reg.Counter(obs.MetricSnapshotReads).Value(); r == 0 {
		t.Error("snapshot-read counter never moved; reads did not take the MVCC path")
	}

	close(release)
	<-delDone
	if delErr != nil {
		t.Fatal(delErr)
	}
	if delRes.Deleted != int64(len(victims)) {
		t.Fatalf("deleted %d rows, want %d", delRes.Deleted, len(victims))
	}

	// Committed: fresh reads miss the victims, the pre-delete view is
	// repeatable and still serves them with full content.
	if got, err := tbl.Lookup(0, victim); err != nil || len(got) != 0 {
		t.Fatalf("Lookup(victim) after commit: rows=%v err=%v, want none", got, err)
	}
	if got, err := view.Lookup(0, victim); err != nil || len(got) != 1 || got[0][1] != 2*victim {
		t.Fatalf("view Lookup(victim) after commit: rows=%v err=%v, want the retained row", got, err)
	}
	n = 0
	if err := view.Scan(func(RID, []int64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("view Scan after commit saw %d rows, want %d", n, rows)
	}
	view.Close()
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
}
