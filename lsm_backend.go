package bulkdel

import (
	"encoding/binary"
	"fmt"
	"sort"

	"bulkdel/internal/cc"
	"bulkdel/internal/lsm"
	"bulkdel/internal/record"
	"bulkdel/internal/table"
	"bulkdel/internal/wal"
)

// The LSM storage backend: a second table implementation behind the same
// public Table API. An LSM table keys every row on field 0 (upsert
// semantics — inserting an existing key overwrites the row) and stores it
// in an internal/lsm tree: memtable + WAL for the tail, SSTables on the
// simulated disk for the bulk, leveled compaction with delete-aware
// (Lethe-style) triggers for reclamation. Deletes write tombstones — a
// range predicate on field 0 costs a single range tombstone, O(1)
// foreground I/O, no matter how many rows it covers — and the space comes
// back within a bounded number of flushes via the tombstone-TTL
// compaction trigger.
//
// What LSM tables do not have: RIDs (rows are addressed by key),
// secondary indexes, MVCC snapshot views, and the ⋈̸ bulk-delete planner
// (tombstones make it unnecessary). Readers instead merge the memtable
// and SSTables (point reads under the tree's own latch; scans snapshot
// their sources and merge latch-free, so scan callbacks may re-enter the
// table); deletes still take the engine's exclusive table lock and
// advance the commit epoch, so the statement lifecycle, observability,
// and locking semantics match the heap backend. Mutations under the
// shared lock (inserts, forced compaction) additionally serialize on the
// table's updMu, exactly like heap inserts: seq allocation, the WAL
// append, the memtable apply, and any flush the mutation triggers must
// form one atomic unit, or a concurrent mutation's flush could publish a
// flushed-seq horizon covering a seq whose record is not yet in the
// memtable — WAL replay would then skip it and the write would vanish
// after a crash.

// BackendLSM is the Options.Backend / Table.Backend() name of the LSM
// storage backend; the zero value selects the heap backend.
const BackendLSM = "lsm"

// Backend reports the table's storage backend: "heap" or "lsm".
func (tbl *Table) Backend() string {
	if tbl.lsm != nil {
		return BackendLSM
	}
	return "heap"
}

// lsmDevices returns the data devices SSTables round-robin over: the
// array's data spindles when one is configured, else device 0.
func (db *DB) lsmDevices() []int {
	if db.opts.Devices > 1 {
		out := make([]int, db.opts.Devices)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	return []int{0}
}

// CreateTableLSM adds an LSM-backed table of numFields int64 attributes
// padded to recordSize bytes, keyed on field 0.
func (db *DB) CreateTableLSM(name string, numFields, recordSize int) (*Table, error) {
	if db.crashed.Load() {
		return nil, errCrashed
	}
	schema := record.Schema{NumFields: numFields, Size: recordSize}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	// Backend-specific bounds Schema.Validate has no business knowing:
	// one encoded entry must fit an SSTable data block, and LSM WAL
	// payloads frame the table name with a one-byte length.
	if recordSize > lsm.MaxRecordSize {
		return nil, fmt.Errorf("bulkdel: LSM record size %d exceeds the backend maximum %d", recordSize, lsm.MaxRecordSize)
	}
	if len(name) > 255 {
		return nil, fmt.Errorf("bulkdel: LSM table name is %d bytes; the WAL frame caps names at 255", len(name))
	}
	db.mu.Lock()
	if _, ok := db.tables[name]; ok {
		db.mu.Unlock()
		return nil, fmt.Errorf("bulkdel: table %q already exists", name)
	}
	tree := lsm.New(db.pool, recordSize, lsm.Options{Devices: db.lsmDevices()})
	// The stub table.Table carries the schema and the lock; it has no heap
	// and no indexes — every data path branches to the tree first.
	t := &table.Table{Name: name, Schema: schema}
	t.Lock = db.cc.Lock(name)
	tbl := &Table{db: db, t: t, lsm: tree}
	db.tables[name] = tbl
	db.mu.Unlock()
	// Flushes and compactions commit their manifest through the catalog:
	// the new SSTable set becomes durable in the same write that the old
	// one is forgotten, which is what makes them atomic under a crash.
	tree.SetPersist(db.saveCatalog)
	if err := db.saveCatalog(); err != nil {
		return nil, err
	}
	return tbl, nil
}

// lsmPayload frames an LSM WAL record payload: [1B name length][name][rest].
func lsmPayload(name string, rest []byte) []byte {
	p := make([]byte, 1+len(name)+len(rest))
	p[0] = byte(len(name))
	copy(p[1:], name)
	copy(p[1+len(name):], rest)
	return p
}

// splitLSMPayload undoes lsmPayload.
func splitLSMPayload(p []byte) (name string, rest []byte, ok bool) {
	if len(p) < 1 || len(p) < 1+int(p[0]) {
		return "", nil, false
	}
	n := int(p[0])
	return string(p[1 : 1+n]), p[1+n:], true
}

// logLSM appends one LSM mutation record when the WAL is on. The record
// is replayed into the memtable by Recover when its seq is newer than the
// manifest's flushed horizon.
func (tbl *Table) logLSM(t wal.Type, a, b uint64, rest []byte) error {
	if tbl.db.log == nil {
		return nil
	}
	_, err := tbl.db.log.Append(t, 0, a, b, lsmPayload(tbl.t.Name, rest))
	return err
}

// lsmInsert adds (or overwrites) the row keyed on fields[0].
func (tbl *Table) lsmInsert(fields []int64) (RID, error) {
	if len(fields) == 0 {
		return record.NilRID, fmt.Errorf("bulkdel: LSM table %s: insert needs at least the key field", tbl.t.Name)
	}
	rec, err := tbl.t.Schema.Encode(fields)
	if err != nil {
		return record.NilRID, err
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	// updMu makes NextSeq → WAL append → Put → MaybeFlush one atomic unit
	// against the other shared-lock mutators (inserts, CompactLSM); see
	// the file comment. Delete statements hold the table exclusively, so
	// they cannot interleave here either.
	tbl.updMu.Lock()
	defer tbl.updMu.Unlock()
	key := fields[0]
	seq := tbl.lsm.NextSeq()
	if err := tbl.logLSM(wal.TLSMPut, uint64(key), seq, rec); err != nil {
		tbl.lsm.AbandonSeq(seq)
		return record.NilRID, err
	}
	tbl.lsm.Put(key, rec, seq)
	if err := tbl.lsm.MaybeFlush(); err != nil {
		return record.NilRID, err
	}
	return record.NilRID, nil
}

// lsmCount counts visible rows via a merged scan.
func (tbl *Table) lsmCount() (int64, error) {
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	return tbl.lsm.Count()
}

// lsmLookup serves Table.Lookup: a point read on field 0, a filtered
// merged scan on any other field.
func (tbl *Table) lsmLookup(field int, v int64) ([][]int64, error) {
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	if field == 0 {
		rec, ok, err := tbl.lsm.Get(v)
		if err != nil || !ok {
			return nil, err
		}
		vals, err := tbl.t.Schema.Decode(rec)
		if err != nil {
			return nil, err
		}
		return [][]int64{vals}, nil
	}
	var out [][]int64
	err := tbl.lsm.Scan(func(_ int64, rec []byte) error {
		if tbl.t.Schema.Field(rec, field) != v {
			return nil
		}
		vals, err := tbl.t.Schema.Decode(rec)
		if err != nil {
			return err
		}
		out = append(out, vals)
		return nil
	})
	return out, err
}

// lsmLookupRange serves Table.LookupRange: a key-range merge on field 0,
// a filtered merged scan otherwise. Results arrive in key order.
func (tbl *Table) lsmLookupRange(field int, lo, hi int64) ([][]int64, error) {
	if lo > hi {
		return nil, nil
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	var out [][]int64
	emit := func(rec []byte) error {
		vals, err := tbl.t.Schema.Decode(rec)
		if err != nil {
			return err
		}
		out = append(out, vals)
		return nil
	}
	if field == 0 {
		err := tbl.lsm.ScanRange(lo, hi, func(_ int64, rec []byte) error {
			return emit(rec)
		})
		return out, err
	}
	err := tbl.lsm.Scan(func(_ int64, rec []byte) error {
		if v := tbl.t.Schema.Field(rec, field); v >= lo && v <= hi {
			return emit(rec)
		}
		return nil
	})
	return out, err
}

// lsmScan serves Table.Scan in key order. LSM rows have no RIDs; fn
// receives record.NilRID.
func (tbl *Table) lsmScan(fn func(rid RID, fields []int64) error) error {
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	return tbl.lsm.Scan(func(_ int64, rec []byte) error {
		vals, err := tbl.t.Schema.Decode(rec)
		if err != nil {
			return err
		}
		return fn(record.NilRID, vals)
	})
}

// lsmBulkDelete serves Table.BulkDelete on an LSM table: every victim
// becomes a point tombstone. Victims on field 0 are probed first (so the
// result counts rows that actually existed and absent keys cost no
// tombstone); other fields collect their matching keys with one merged
// scan. The statement runs under the exclusive table lock, appends one
// WAL record per tombstone, flushes the log at commit, and advances the
// commit epoch like any other committed delete.
func (tbl *Table) lsmBulkDelete(field int, values []int64, opts BulkOptions) (*BulkResult, error) {
	stmt, held, err := tbl.db.beginStatementTimeout("bulk-delete", tbl.t.Name,
		[]cc.Claim{{Table: tbl.t.Name, Mode: cc.Exclusive}}, opts.LockWait)
	if err != nil {
		return nil, fmt.Errorf("bulkdel: bulk delete on %s: %w", tbl.t.Name, err)
	}
	defer tbl.db.endStatement(stmt, held)
	res := &BulkResult{Victims: len(values)}

	var keys []int64
	if field == 0 {
		for _, v := range values {
			_, ok, err := tbl.lsm.Get(v)
			if err != nil {
				return nil, err
			}
			if ok {
				keys = append(keys, v)
			}
		}
	} else {
		want := make(map[int64]bool, len(values))
		for _, v := range values {
			want[v] = true
		}
		err := tbl.lsm.Scan(func(key int64, rec []byte) error {
			if want[tbl.t.Schema.Field(rec, field)] {
				keys = append(keys, key)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, k := range keys {
		seq := tbl.lsm.NextSeq()
		if err := tbl.logLSM(wal.TLSMDel, uint64(k), seq, nil); err != nil {
			tbl.lsm.AbandonSeq(seq)
			return nil, err
		}
		tbl.lsm.DeletePoint(k, seq)
		res.Deleted++
	}
	if err := tbl.lsmCommitDelete(); err != nil {
		return nil, err
	}
	return res, nil
}

// DeleteRange deletes every row whose field value lies in [lo, hi], both
// bounds inclusive.
//
// On an LSM table with field == 0 this is the backend's signature move:
// one range tombstone is logged and dropped into the memtable — O(1)
// foreground I/O regardless of how many rows the range covers — and the
// result's Deleted is -1 (a blind delete does not know the count; the
// covered rows disappear from every read immediately and their space is
// reclaimed by delete-aware compaction within TombstoneTTL flushes).
// Non-key fields fall back to a merged scan issuing point tombstones.
//
// On a heap table the range is resolved to its distinct field values and
// handed to the regular ⋈̸ BulkDelete machinery.
func (tbl *Table) DeleteRange(field int, lo, hi int64, opts BulkOptions) (*BulkResult, error) {
	if tbl.db.crashed.Load() {
		return nil, errCrashed
	}
	if lo > hi {
		return &BulkResult{}, nil
	}
	if tbl.lsm == nil {
		rows, err := tbl.LookupRange(field, lo, hi)
		if err != nil {
			return nil, err
		}
		seen := make(map[int64]bool, len(rows))
		vals := make([]int64, 0, len(rows))
		for _, row := range rows {
			if v := row[field]; !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return &BulkResult{}, nil
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return tbl.BulkDelete(field, vals, opts)
	}

	stmt, held, err := tbl.db.beginStatementTimeout("bulk-delete", tbl.t.Name,
		[]cc.Claim{{Table: tbl.t.Name, Mode: cc.Exclusive}}, opts.LockWait)
	if err != nil {
		return nil, fmt.Errorf("bulkdel: range delete on %s: %w", tbl.t.Name, err)
	}
	defer tbl.db.endStatement(stmt, held)
	res := &BulkResult{}
	if field == 0 {
		seq := tbl.lsm.NextSeq()
		var seqBuf [8]byte
		binary.LittleEndian.PutUint64(seqBuf[:], seq)
		if err := tbl.logLSM(wal.TLSMRangeDel, uint64(lo), uint64(hi), seqBuf[:]); err != nil {
			tbl.lsm.AbandonSeq(seq)
			return nil, err
		}
		tbl.lsm.DeleteRange(lo, hi, seq)
		res.Deleted = -1 // blind: covered rows are invisible, count unknown
	} else {
		var keys []int64
		err := tbl.lsm.Scan(func(key int64, rec []byte) error {
			if v := tbl.t.Schema.Field(rec, field); v >= lo && v <= hi {
				keys = append(keys, key)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			seq := tbl.lsm.NextSeq()
			if err := tbl.logLSM(wal.TLSMDel, uint64(k), seq, nil); err != nil {
				tbl.lsm.AbandonSeq(seq)
				return nil, err
			}
			tbl.lsm.DeletePoint(k, seq)
			res.Deleted++
		}
	}
	if err := tbl.lsmCommitDelete(); err != nil {
		return nil, err
	}
	return res, nil
}

// lsmCommitDelete is the tail of every LSM delete statement: make the
// tombstones durable, advance the commit epoch (an LSM delete commits
// exactly like a heap bulk delete does), and let the tree flush/compact
// if its thresholds say so.
func (tbl *Table) lsmCommitDelete() error {
	if tbl.db.log != nil {
		if err := tbl.db.log.Flush(); err != nil {
			return err
		}
	}
	tbl.db.epochs.Commit()
	return tbl.lsm.MaybeFlush()
}

// CompactLSM runs the table's triggered compactions to quiescence, then
// keeps force-compacting until no SSTable carries a tombstone — the
// "space fully reclaimed" fixpoint the benchmark measures. It is a no-op
// on heap tables.
func (tbl *Table) CompactLSM() error {
	if tbl.lsm == nil {
		return nil
	}
	tbl.t.Lock.LockShared()
	defer tbl.t.Lock.UnlockShared()
	// Like lsmInsert: the forced flush must not interleave with a
	// concurrent insert's NextSeq → Put window, or the published flush
	// horizon could cover a not-yet-applied seq.
	tbl.updMu.Lock()
	defer tbl.updMu.Unlock()
	if err := tbl.lsm.FlushMem(); err != nil {
		return err
	}
	return tbl.lsm.DrainTombstones()
}

// LSMManifest returns the table's current LSM manifest (zero value for
// heap tables) — the level layout tests and tools inspect.
func (tbl *Table) LSMManifest() lsm.Manifest {
	if tbl.lsm == nil {
		return lsm.Manifest{}
	}
	return tbl.lsm.Manifest()
}

// replayLSMRecords replays durable LSM WAL records into the freshly
// reopened trees: a record whose seq is at or below the manifest's
// flushed horizon is already inside an SSTable and is skipped; newer ones
// rebuild the memtable exactly as it was at the crash (order inside the
// log does not matter — every record carries its seq, and both memtable
// replacement and tombstone visibility compare seqs, not arrival order).
// Returns the number of records applied.
func (db *DB) replayLSMRecords(recs []wal.Record) int {
	applied := 0
	for _, r := range recs {
		switch r.Type {
		case wal.TLSMPut, wal.TLSMDel, wal.TLSMRangeDel:
		default:
			continue
		}
		name, rest, ok := splitLSMPayload(r.Payload)
		if !ok {
			continue
		}
		tbl := db.tables[name]
		if tbl == nil || tbl.lsm == nil {
			continue
		}
		tree := tbl.lsm
		switch r.Type {
		case wal.TLSMPut:
			if len(rest) != tbl.t.Schema.Size {
				continue
			}
			tree.NoteReplayedSeq(r.B)
			if r.B > tree.FlushedSeq() {
				tree.Put(int64(r.A), append([]byte(nil), rest...), r.B)
				applied++
			}
		case wal.TLSMDel:
			tree.NoteReplayedSeq(r.B)
			if r.B > tree.FlushedSeq() {
				tree.DeletePoint(int64(r.A), r.B)
				applied++
			}
		case wal.TLSMRangeDel:
			if len(rest) != 8 {
				continue
			}
			seq := binary.LittleEndian.Uint64(rest)
			tree.NoteReplayedSeq(seq)
			if seq > tree.FlushedSeq() {
				tree.DeleteRange(int64(r.A), int64(r.B), seq)
				applied++
			}
		}
	}
	return applied
}
