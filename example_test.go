package bulkdel_test

import (
	"fmt"
	"log"

	"bulkdel"
)

// The smallest complete round trip: a table, an index, some rows, and one
// vertical bulk delete.
func Example() {
	db, err := bulkdel.Open(bulkdel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	r, err := db.CreateTable("R", 2, 64)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.CreateIndex(bulkdel.IndexOptions{Name: "IA", Field: 0, Unique: true}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := r.Insert(int64(i), int64(i*i)); err != nil {
			log.Fatal(err)
		}
	}
	res, err := r.BulkDelete(0, []int64{10, 20, 30, 40}, bulkdel.BulkOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Deleted, "deleted,", r.Count(), "remain")
	// Output: 4 deleted, 996 remain
}

// Explain renders the physical plan a method would execute — the code form
// of the paper's Figures 3-5.
func ExampleTable_Explain() {
	db, _ := bulkdel.Open(bulkdel.Options{})
	r, _ := db.CreateTable("R", 2, 64)
	_ = r.CreateIndex(bulkdel.IndexOptions{Name: "IA", Field: 0})
	for i := 0; i < 100; i++ {
		_, _ = r.Insert(int64(i), int64(2*i))
	}
	fmt.Print(r.Explain(0, bulkdel.SortMerge, 1<<20))
	// Output:
	// DELETE  FROM R WHERE field0 IN D  —  method=sort/merge, memory=1.0 MB
	//    └─ ⋈̸[merge] R (by RID)  → π_{key,RID} per remaining index
	//       └─ sort  RIDs by physical position
	//          └─ ⋈̸[merge] IA (by key)  → RIDs of deleted entries
	//             └─ sort  π_field0(D) by key
}

// BulkUpdate applies the vertical technique to UPDATE statements — the
// paper's "salary raise" sketch: a bulk delete plus a bulk insert on the
// index over the updated attribute.
func ExampleTable_BulkUpdate() {
	db, _ := bulkdel.Open(bulkdel.Options{})
	emp, _ := db.CreateTable("emp", 2, 64) // (id, salary)
	_ = emp.CreateIndex(bulkdel.IndexOptions{Name: "id", Field: 0, Unique: true})
	_ = emp.CreateIndex(bulkdel.IndexOptions{Name: "salary", Field: 1})
	for i := 0; i < 100; i++ {
		_, _ = emp.Insert(int64(i), int64(50000+i*100))
	}
	// Raise the salary of employees 10..19 by 10%.
	ids := []int64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	res, err := emp.BulkUpdate(0, ids, 1, func(s int64) int64 { return s * 110 / 100 }, bulkdel.BulkOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rows, _ := emp.Lookup(0, 10)
	fmt.Println(res.Updated, "raised; emp 10 now earns", rows[0][1])
	// Output: 10 raised; emp 10 now earns 56100
}

// Recover rolls an interrupted bulk delete forward after a crash.
func ExampleRecover() {
	db, _ := bulkdel.Open(bulkdel.Options{})
	r, _ := db.CreateTable("R", 1, 32)
	_ = r.CreateIndex(bulkdel.IndexOptions{Name: "IA", Field: 0, Unique: true})
	for i := 0; i < 500; i++ {
		_, _ = r.Insert(int64(i))
	}
	_, _ = r.BulkDelete(0, []int64{1, 2, 3}, bulkdel.BulkOptions{})
	_ = db.Flush()

	disk := db.SimulateCrash()
	db2, report, err := bulkdel.Recover(disk, bulkdel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("in progress:", report.BulkInProgress, "— rows:", db2.Table("R").Count())
	// Output: in progress: false — rows: 497
}
